package ra

// This file implements the streaming evaluator: a pull-based
// (Volcano-style) executor whose operators yield one tuple at a time
// through the Cursor interface instead of materializing every
// subexpression. Selections, constant selections, constant tagging and
// projections are fully pipelined (projection defers deduplication:
// every consumer in this algebra is either another pipelined operator
// or a sink that deduplicates through rel.Relation.Add, so duplicate
// tuples are consumed harmlessly). Joins materialize only their build
// side — a hash index on interned value IDs for equi-joins, a replayed
// scan for pure theta/cartesian joins — and stream the probe side.
// Union and difference remain blocking sinks, as set semantics
// requires.
//
// The point of the exercise is observability: the paper's dichotomy
// (Theorem 17) is about intermediate-result *sizes*, and the
// materialized evaluator can only report what it materializes. The
// streaming trace separates the two axes: TraceStep sizes and
// MaxIntermediate count the tuples that *flow* through each operator,
// while MaxResident records the peak number of tuples the executor
// actually *holds* in operator state (build tables, sinks) at any one
// moment. On the classical division expression the flow stays
// quadratic — the paper proves it must — but the resident footprint
// drops to linear, because the quadratic product is never stored.
//
// The building blocks — Meter, OpenStream, the Cursor interface — are
// exported so the sibling algebras (internal/sa, internal/xra) can run
// their own streaming evaluators on the same substrate and share one
// resident meter across a mixed plan.

import (
	"context"
	"fmt"

	"radiv/internal/exec"
	"radiv/internal/rel"
)

// Cursor is the pull-based tuple iterator of the streaming evaluator:
// Next returns the next tuple and true, or (nil, false) once the
// stream is exhausted. Yielded tuples may share storage with database
// relations and must be treated as read-only.
type Cursor interface {
	Next() (rel.Tuple, bool)
}

// StreamOptions tunes the streaming executor.
type StreamOptions struct {
	// DedupProjections inserts a pipelined hash-set filter after every
	// projection, so duplicate projected tuples are dropped where they
	// arise instead of flowing downstream. Without it deduplication is
	// deferred to the consuming sink: that keeps projection state at
	// zero, but a projection feeding a join's probe side then replays
	// the join's candidate scan once per duplicate probe tuple (k× the
	// probes on keys with k source tuples). The filter is the measured
	// time-for-memory trade of PR 3: it spends one resident tuple per
	// distinct projected tuple to make every probe unique (see
	// BenchmarkStreamedDedupFilter for the measurement). Setting it
	// forces the filter on every projection, overriding Dedup.
	DedupProjections bool
	// Dedup selects the filter policy when DedupProjections is unset.
	// The zero value, DedupAuto, is the cost-based default: per
	// projection, the filter is inserted exactly when the estimated
	// duplicate fan-in × consuming-join bucket size exceeds the
	// resident cost (see cost.go). DedupOff restores the deferred-only
	// behavior; DedupOn forces the filter everywhere.
	Dedup DedupMode
	// Vectorize runs the columnar batch executor (vector.go) instead of
	// the tuple-at-a-time one: operators exchange rel.Batch ID columns,
	// results and traces are identical, throughput is not.
	Vectorize bool
	// BatchSize overrides the row capacity of the vectorized executor's
	// batches; 0 means rel.BatchCap. Only meaningful with Vectorize.
	BatchSize int
	// Limits bounds the query's resource use (resident tuples, pooled
	// batches). Enforced only by the governed Context entry points;
	// the legacy panic-based entries ignore it.
	Limits exec.Limits
}

// EvalStreamed evaluates the expression with the streaming executor
// and returns the result relation. The result is always a fresh
// relation owned by the caller. Like every evaluator entry point, it
// accepts any rel.ReadStore backend; base relations are scanned in
// insertion order, so the result sequence is identical across
// backends holding the same data.
func EvalStreamed(e Expr, d rel.ReadStore) *rel.Relation {
	res, _ := EvalStreamedTraced(e, d)
	return res
}

// EvalStreamedTraced evaluates the expression with the streaming
// executor and also returns the trace. Step sizes count the tuples
// emitted by each operator — for dedup-deferred projections this can
// exceed the node's set cardinality, and for stored relations consumed
// in place (the subtrahend of a difference, the replayed side of a
// cartesian join) it is zero, because no tuples flow through the
// operator graph for them. MaxResident is filled in (see Trace). The
// expression is validated first, as in EvalTraced.
func EvalStreamedTraced(e Expr, d rel.ReadStore) (*rel.Relation, *Trace) {
	return EvalStreamedTracedOpts(e, d, StreamOptions{})
}

// EvalStreamedTracedOpts is EvalStreamedTraced with explicit executor
// options.
func EvalStreamedTracedOpts(e Expr, d rel.ReadStore, opts StreamOptions) (*rel.Relation, *Trace) {
	return evalStreamedGoverned(nil, e, d, opts)
}

// EvalContext is the error-returning boundary over the materialized
// evaluator: the engine's package-prefixed panics surface as typed,
// wrapped errors instead of unwinding into the caller. Cancellation
// is only observed before evaluation starts — the materialized
// evaluator has no mid-flight check points; use EvalStreamedContext
// for cancellable execution.
func EvalContext(ctx context.Context, e Expr, d rel.ReadStore) (res *rel.Relation, err error) {
	defer exec.RecoverPanic(&err)
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("ra: query canceled: %w", cerr)
		}
	}
	return Eval(e, d), nil
}

// EvalStreamedContext is the governed streaming entry point: it
// honors ctx cancellation and deadlines at every pull boundary,
// enforces opts.Limits, converts internal panics into typed errors,
// and guarantees that on error every pooled batch the evaluation
// acquired has been released. opts.Vectorize selects the columnar
// executor exactly as in EvalStreamedTracedOpts. On error the
// relation and trace are nil.
func EvalStreamedContext(ctx context.Context, e Expr, d rel.ReadStore, opts StreamOptions) (*rel.Relation, *Trace, error) {
	if verr := Validate(e); verr != nil {
		return nil, nil, fmt.Errorf("ra: invalid expression: %w", verr)
	}
	res, tr, err := func() (res *rel.Relation, tr *Trace, err error) {
		g := exec.NewGovernor(ctx, opts.Limits)
		defer g.Recover(&err)
		res, tr = evalStreamedGoverned(g, e, d, opts)
		return res, tr, nil
	}()
	if err != nil {
		return nil, nil, err
	}
	return res, tr, nil
}

// EvalStreamedGoverned runs the streaming (or, per opts.Vectorize,
// columnar) executor under a caller-supplied governor — the hook the
// plan layer uses to share one governor across engines. The caller
// owns the boundary: it must recover with Governor.Recover. A nil
// governor is exactly the legacy ungoverned path.
func EvalStreamedGoverned(g *exec.Governor, e Expr, d rel.ReadStore, opts StreamOptions) (*rel.Relation, *Trace) {
	return evalStreamedGoverned(g, e, d, opts)
}

// evalStreamedGoverned is the shared core of the legacy and governed
// entries: with a nil governor it is exactly the old executor (no
// guards, no overhead); with a governor it threads it through the
// meter so every leaf scan is wrapped in a guard cursor.
func evalStreamedGoverned(g *exec.Governor, e Expr, d rel.ReadStore, opts StreamOptions) (*rel.Relation, *Trace) {
	if opts.Vectorize {
		return evalVectorizedTraced(g, e, d, opts)
	}
	if err := Validate(e); err != nil {
		panic("ra: invalid expression: " + err.Error())
	}
	meter := &Meter{gov: g}
	b := &streamBuilder{d: d, meter: meter, opts: opts}
	out := rel.NewRelationSized(e.Arity(), sinkHint(d, e))
	var root *countNode
	if u, ok := e.(*Union); ok {
		// A root union's sink would be the result itself: drain both
		// inputs straight into the output relation instead, so the
		// result is built once and — per the MaxResident contract —
		// not counted as resident.
		var lc, rc Cursor
		var ln, rn *countNode
		lc, ln = b.cursor(u.L)
		rc, rn = b.cursor(u.E)
		lc, rc = meter.Guard(lc), meter.Guard(rc)
		root = &countNode{e: e, kids: []*countNode{ln, rn}}
		for t, ok := lc.Next(); ok; t, ok = lc.Next() {
			out.Add(t)
		}
		for t, ok := rc.Next(); ok; t, ok = rc.Next() {
			out.Add(t)
		}
		root.n = out.Len()
	} else {
		var cur Cursor
		cur, root = b.cursor(e)
		cur = meter.Guard(cur)
		for t, ok := cur.Next(); ok; t, ok = cur.Next() {
			out.Add(t)
		}
	}
	tr := &Trace{}
	root.record(tr)
	tr.MaxResident = meter.Max()
	return out, tr
}

// Meter tracks the number of tuples currently held in operator state
// across a whole streaming plan, and the peak. The final result
// relation is not counted: every evaluator must hold its output, so
// the maximum measures only the executor's auxiliary state. A single
// Meter may be shared across algebras (the xra evaluator threads its
// meter through wrapped RA subplans via OpenStream), so the peak is
// the true concurrent footprint of the mixed plan.
type Meter struct {
	cur, max int
	gov      *exec.Governor
}

// NewGovernedMeter builds a meter bound to a query governor. Guard
// cursors obtained from Guard/GuardBatches enforce the governor's
// cancellation and budgets against this meter's live count; a plain
// &Meter{} is ungoverned and the guards are free passthroughs.
func NewGovernedMeter(g *exec.Governor) *Meter { return &Meter{gov: g} }

// Grow records n more tuples entering operator state.
func (m *Meter) Grow(n int) {
	m.cur += n
	if m.cur > m.max {
		m.max = m.cur
	}
}

// Release records n tuples leaving operator state.
func (m *Meter) Release(n int) { m.cur -= n }

// Max returns the peak number of concurrently held tuples so far.
func (m *Meter) Max() int { return m.max }

// Cur returns the currently resident tuple count.
func (m *Meter) Cur() int { return m.cur }

// Governor returns the query governor the meter is bound to, or nil.
func (m *Meter) Governor() *exec.Governor {
	if m == nil {
		return nil
	}
	return m.gov
}

// Watch registers c's held-batch cleanup with the meter's governor
// when both exist (see rel.BatchHolder); a no-op otherwise.
func (m *Meter) Watch(c any) {
	if m != nil && m.gov != nil {
		m.gov.Watch(c)
	}
}

// guardStride is how many tuples a tuple-path guard lets through
// between governor checks. Power of two; the vectorized guard checks
// once per batch instead.
const guardStride = 64

// Guard wraps a tuple cursor with the governor check point: every
// guardStride rows it observes cancellation and enforces the
// resident-tuple and batch-pool budgets. With no governor the cursor
// is returned unchanged, so ungoverned plans pay nothing. The check
// happens before the pull, when the guard's frame holds no pooled
// batch — the only place an abort is allowed to unwind from.
func (m *Meter) Guard(in Cursor) Cursor {
	if m == nil || m.gov == nil {
		return in
	}
	m.gov.Watch(in)
	return &guardCursor{in: in, g: m.gov, m: m}
}

// GuardBatches is Guard for batch cursors: one governor check per
// batch boundary, which is the "≤ one branch per batch" the
// cancellation-latency contract promises.
func (m *Meter) GuardBatches(in rel.BatchCursor) rel.BatchCursor {
	if m == nil || m.gov == nil {
		return in
	}
	m.gov.Watch(in)
	return &guardBatchCursor{in: in, g: m.gov, m: m}
}

type guardCursor struct {
	in Cursor
	g  *exec.Governor
	m  *Meter
	n  int
}

func (c *guardCursor) Next() (rel.Tuple, bool) {
	if c.n&(guardStride-1) == 0 {
		c.g.Check()
		c.g.CheckResident(c.m.cur)
	}
	c.n++
	return c.in.Next()
}

type guardBatchCursor struct {
	in rel.BatchCursor
	g  *exec.Governor
	m  *Meter
}

func (c *guardBatchCursor) NextBatch() (*rel.Batch, bool) {
	c.g.Check()
	c.g.CheckResident(c.m.cur)
	return c.in.NextBatch()
}

// Stream is a compiled streaming plan handle, the hook through which
// the extended algebra pipelines wrapped pure-RA subexpressions: the
// caller pulls tuples with Next and, once done, folds the plan's flow
// counts into its own trace with EachStep. The meter passed to
// OpenStream accumulates the subplan's resident state alongside the
// caller's own.
type Stream struct {
	cur  Cursor
	root *countNode
}

// OpenStream validates e and compiles it into a streaming plan over d,
// charging operator state to m.
func OpenStream(e Expr, d rel.ReadStore, m *Meter, opts StreamOptions) *Stream {
	if err := Validate(e); err != nil {
		panic("ra: invalid expression: " + err.Error())
	}
	b := &streamBuilder{d: d, meter: m, opts: opts}
	cur, root := b.cursor(e)
	return &Stream{cur: cur, root: root}
}

// Next implements Cursor.
func (s *Stream) Next() (rel.Tuple, bool) { return s.cur.Next() }

// EachStep visits the plan's flow counts in post-order (children
// before parents), matching the materialized evaluator's step order.
// Call it only after the stream is exhausted.
func (s *Stream) EachStep(f func(e Expr, n int)) { s.root.each(f) }

// countNode mirrors one occurrence of an expression node in the plan.
// A subexpression shared between two places in the tree gets two
// countNodes, exactly as the materialized evaluator evaluates (and
// records) it twice.
type countNode struct {
	e    Expr
	n    int
	kids []*countNode
}

// each visits the subtree in post-order.
func (c *countNode) each(f func(Expr, int)) {
	for _, k := range c.kids {
		k.each(f)
	}
	f(c.e, c.n)
}

// record appends the subtree's steps to the trace in post-order,
// matching the materialized evaluator's step order.
func (c *countNode) record(tr *Trace) {
	c.each(func(e Expr, n int) { tr.record(e, n) })
}

// countCursor wraps an operator cursor and counts its emissions into
// the plan's countNode.
type countCursor struct {
	in   Cursor
	node *countNode
}

func (c *countCursor) Next() (rel.Tuple, bool) {
	t, ok := c.in.Next()
	if ok {
		c.node.n++
	}
	return t, ok
}

// streamBuilder translates an expression tree into a cursor plan.
type streamBuilder struct {
	d     rel.ReadStore
	meter *Meter
	opts  StreamOptions
	// probeBucket carries consumer context one level down the
	// recursion: when a join builds its probe (left) input, it holds
	// the estimated per-probe candidate scan, so a projection directly
	// below can weigh the dedup filter (cost.go). Zero elsewhere.
	probeBucket float64
}

// baseRel resolves a relation-name node against the store, with the
// same arity check the materialized evaluator performs. For the
// in-memory database the view is the stored *rel.Relation itself; a
// sharded store routes probes and scans through its placement log.
func (b *streamBuilder) baseRel(n *Rel) rel.StoredRel {
	return rel.CheckView(b.d, n.Name, n.arity, "ra")
}

func (b *streamBuilder) cursor(e Expr) (Cursor, *countNode) {
	node := &countNode{e: e}
	var cur Cursor
	dedup := false
	// Consume the consumer context: it applies to this node only.
	bucket := b.probeBucket
	b.probeBucket = 0
	switch n := e.(type) {
	case *Rel:
		cur = b.meter.Guard(b.baseRel(n).Scan())
	case *Union:
		l, ln := b.cursor(n.L)
		r, rn := b.cursor(n.E)
		node.kids = []*countNode{ln, rn}
		cur = &unionCursor{l: l, r: r, arity: n.Arity(), meter: b.meter}
	case *Diff:
		l, ln := b.cursor(n.L)
		node.kids = []*countNode{ln}
		dc := &diffCursor{in: l, arity: n.Arity(), meter: b.meter}
		if base, ok := n.E.(*Rel); ok {
			// The subtrahend is a stored relation: probe it in place,
			// holding nothing.
			dc.right = b.baseRel(base)
			node.kids = append(node.kids, &countNode{e: n.E})
		} else {
			rc, rn := b.cursor(n.E)
			dc.buildC = rc
			node.kids = append(node.kids, rn)
		}
		cur = dc
	case *Project:
		dedup = dedupProjection(b.d, b.opts, n, bucket)
		in, kn := b.cursor(n.E)
		node.kids = []*countNode{kn}
		cols := n.Cols
		cur = &mapCursor{in: in, f: func(t rel.Tuple) rel.Tuple { return t.Project(cols) }}
	case *Select:
		in, kn := b.cursor(n.E)
		node.kids = []*countNode{kn}
		i, op, j := n.I, n.Op, n.J
		cur = &filterCursor{in: in, keep: func(t rel.Tuple) bool { return op.Eval(t[i-1], t[j-1]) }}
	case *SelectConst:
		in, kn := b.cursor(n.E)
		node.kids = []*countNode{kn}
		i, cv := n.I, n.C
		cur = &filterCursor{in: in, keep: func(t rel.Tuple) bool { return t[i-1].Equal(cv) }}
	case *ConstTag:
		in, kn := b.cursor(n.E)
		node.kids = []*countNode{kn}
		tag := rel.Tuple{n.C}
		cur = &mapCursor{in: in, f: func(t rel.Tuple) rel.Tuple { return t.Concat(tag) }}
	case *Join:
		b.probeBucket = joinBucket(b.d, n)
		l, ln := b.cursor(n.L)
		node.kids = []*countNode{ln}
		if eqs := n.Cond.EqPairs(); len(eqs) > 0 {
			rc, rn := b.cursor(n.E)
			node.kids = append(node.kids, rn)
			cur = &hashJoinCursor{left: l, buildC: rc, cond: n.Cond, eqs: eqs, meter: b.meter}
		} else {
			lj := &loopJoinCursor{left: l, cond: n.Cond, meter: b.meter}
			if base, ok := n.E.(*Rel); ok {
				// Replay the stored relation in place per probe tuple.
				lj.base = b.baseRel(base)
				node.kids = append(node.kids, &countNode{e: n.E})
			} else {
				rc, rn := b.cursor(n.E)
				lj.buildC = rc
				node.kids = append(node.kids, rn)
			}
			cur = lj
		}
	default:
		panic(fmt.Sprintf("ra: unknown expression %T", e))
	}
	counted := &countCursor{in: cur, node: node}
	if dedup {
		// The filter sits outside the count, so the node's flow number
		// still reports what the operator emitted (duplicates included)
		// and only the downstream consumers see the deduplicated stream.
		return &dedupCursor{in: counted, arity: e.Arity(), meter: b.meter}, node
	}
	return counted, node
}

// The constructors below expose the generic operator cursors to the
// sibling algebras' streaming evaluators (internal/sa, internal/xra),
// which differ from pure RA only in their algebra-specific operators
// (semijoins, γ): one implementation of filtering, mapping, sinks and
// joins serves all three executors.

// NewFilterCursor streams the tuples of in that satisfy keep.
func NewFilterCursor(in Cursor, keep func(rel.Tuple) bool) Cursor {
	return &filterCursor{in: in, keep: keep}
}

// NewMapCursor applies f to every tuple of in (projection, constant
// tagging); deduplication is deferred to the consuming sink.
func NewMapCursor(in Cursor, f func(rel.Tuple) rel.Tuple) Cursor {
	return &mapCursor{in: in, f: f}
}

// DrainInto pulls in to exhaustion into sink, charging m one tuple per
// retained (non-duplicate) addition.
func DrainInto(in Cursor, sink *rel.Relation, m *Meter) { drainInto(in, sink, m) }

// NewUnionSinkCursor drains both inputs into one deduplicated sink and
// streams it out, releasing the held state at exhaustion.
func NewUnionSinkCursor(l, r Cursor, arity int, m *Meter) Cursor {
	return &unionCursor{l: l, r: r, arity: arity, meter: m}
}

// NewDiffCursor streams left through a membership filter against the
// subtrahend: a stored relation view is probed in place (holding
// nothing), otherwise buildC is materialized first. Exactly one of
// buildC and stored must be non-nil.
func NewDiffCursor(left Cursor, buildC Cursor, stored rel.StoredRel, arity int, m *Meter) Cursor {
	return &diffCursor{in: left, buildC: buildC, right: stored, arity: arity, meter: m}
}

// NewHashJoinCursor builds the equality-keyed hash join: the build
// side is materialized into an interned-ID index, the left side
// streams against it, and the full condition is verified on every
// candidate. cond must contain at least one equality atom.
func NewHashJoinCursor(left, build Cursor, cond Cond, m *Meter) Cursor {
	eqs := cond.EqPairs()
	if len(eqs) == 0 {
		panic("ra: NewHashJoinCursor requires an equality atom")
	}
	return &hashJoinCursor{left: left, buildC: build, cond: cond, eqs: eqs, meter: m}
}

// NewLoopJoinCursor replays the right side per probe tuple — in place
// when stored is set, otherwise from a buffer materialized from
// buildC. Exactly one of buildC and stored must be non-nil.
func NewLoopJoinCursor(left Cursor, buildC Cursor, stored rel.StoredRel, cond Cond, m *Meter) Cursor {
	return &loopJoinCursor{left: left, buildC: buildC, base: stored, cond: cond, meter: m}
}

// filterCursor streams the tuples of its input that satisfy keep.
type filterCursor struct {
	in   Cursor
	keep func(rel.Tuple) bool
}

func (c *filterCursor) Next() (rel.Tuple, bool) {
	for {
		t, ok := c.in.Next()
		if !ok {
			return nil, false
		}
		if c.keep(t) {
			return t, true
		}
	}
}

// mapCursor applies a per-tuple transformation (projection, constant
// tagging). Deduplication is deferred to the consuming sink.
type mapCursor struct {
	in Cursor
	f  func(rel.Tuple) rel.Tuple
}

func (c *mapCursor) Next() (rel.Tuple, bool) {
	t, ok := c.in.Next()
	if !ok {
		return nil, false
	}
	return c.f(t), true
}

// dedupCursor is the opt-in pipelined dedup filter
// (StreamOptions.DedupProjections): it holds a hash set of the tuples
// seen so far and passes each distinct tuple through exactly once. The
// set is operator state — one resident tuple per distinct input — and
// is released at exhaustion.
type dedupCursor struct {
	in    Cursor
	arity int
	meter *Meter
	seen  *rel.Relation
	held  int
}

func (c *dedupCursor) Next() (rel.Tuple, bool) {
	if c.seen == nil && c.held == 0 {
		c.seen = rel.NewRelation(c.arity)
	}
	for {
		t, ok := c.in.Next()
		if !ok {
			c.meter.Release(c.held)
			c.held = 0
			c.seen = nil
			return nil, false
		}
		if c.seen.Add(t) {
			c.meter.Grow(1)
			c.held++
			return t, true
		}
	}
}

// drainInto pulls in to exhaustion into the sink relation, growing the
// meter by one per tuple actually retained (duplicates cost nothing).
func drainInto(in Cursor, sink *rel.Relation, m *Meter) {
	for t, ok := in.Next(); ok; t, ok = in.Next() {
		if sink.Add(t) {
			m.Grow(1)
		}
	}
}

// unionCursor is a blocking sink: both inputs are drained into one
// deduplicated relation, which is then streamed out. Its state is
// released once the output is exhausted.
type unionCursor struct {
	l, r   Cursor
	arity  int
	meter  *Meter
	opened bool
	out    *rel.Cursor
	held   int
}

func (c *unionCursor) Next() (rel.Tuple, bool) {
	if !c.opened {
		c.opened = true
		sink := rel.NewRelation(c.arity)
		drainInto(c.l, sink, c.meter)
		drainInto(c.r, sink, c.meter)
		c.held = sink.Len()
		c.out = sink.Cursor()
	}
	if c.out == nil {
		return nil, false
	}
	t, ok := c.out.Next()
	if !ok {
		// Drop the sink with its accounting, so the released tuples
		// really are reclaimable.
		c.meter.Release(c.held)
		c.held = 0
		c.out = nil
	}
	return t, ok
}

// diffCursor materializes its subtrahend (unless it is a stored
// relation view, which is probed in place) and streams the left input
// through the membership filter. Output deduplication is deferred to
// the consuming sink, so duplicate left tuples pass through.
type diffCursor struct {
	in     Cursor // left input, streaming
	buildC Cursor // right input; nil when right is a stored relation
	arity  int
	right  rel.StoredRel
	meter  *Meter
	opened bool
	held   int
}

func (c *diffCursor) Next() (rel.Tuple, bool) {
	if !c.opened {
		c.opened = true
		if c.buildC != nil {
			sink := rel.NewRelation(c.arity)
			drainInto(c.buildC, sink, c.meter)
			c.held = sink.Len()
			c.right = sink
		}
	}
	for {
		t, ok := c.in.Next()
		if !ok {
			c.meter.Release(c.held)
			c.held = 0
			c.right = nil
			return nil, false
		}
		if !c.right.Contains(t) {
			return t, true
		}
	}
}

// hashJoinCursor materializes the right (build) input into a hash
// index keyed by JoinKeyer — the same interned-ID keying the
// materialized evalJoin uses — and streams the left (probe) input
// against it. Cond.Holds verifies the full condition — equality atoms,
// residual atoms, hash collisions — on every candidate pair.
type hashJoinCursor struct {
	left   Cursor
	buildC Cursor
	cond   Cond
	eqs    [][2]int
	meter  *Meter

	opened bool
	keyer  *JoinKeyer
	index  map[uint64][]rel.Tuple
	held   int

	cur   rel.Tuple
	cands []rel.Tuple
	ci    int
}

func (c *hashJoinCursor) Next() (rel.Tuple, bool) {
	if !c.opened {
		c.opened = true
		c.keyer = NewJoinKeyer(c.eqs)
		c.index = make(map[uint64][]rel.Tuple)
		for t, ok := c.buildC.Next(); ok; t, ok = c.buildC.Next() {
			k, _ := c.keyer.Key(t, 1)
			c.index[k] = append(c.index[k], t)
			c.meter.Grow(1)
			c.held++
		}
	}
	for {
		for c.ci < len(c.cands) {
			b := c.cands[c.ci]
			c.ci++
			if c.cond.Holds(c.cur, b) {
				return c.cur.Concat(b), true
			}
		}
		t, ok := c.left.Next()
		if !ok {
			c.meter.Release(c.held)
			c.held = 0
			c.index, c.cands = nil, nil
			return nil, false
		}
		c.cur = t
		c.cands, c.ci = nil, 0
		if k, ok := c.keyer.Key(t, 0); ok {
			c.cands = c.index[k]
		}
	}
}

// loopJoinCursor handles joins without equality atoms (cartesian
// products and pure theta joins): the right input is replayed for
// every left tuple — in place via a resettable cursor when it is a
// stored relation view, otherwise from a materialized buffer.
type loopJoinCursor struct {
	left   Cursor
	buildC Cursor        // right child; nil when base is set
	base   rel.StoredRel // stored right relation, replayed in place
	cond   Cond
	meter  *Meter

	opened  bool
	right   []rel.Tuple
	baseCur rel.TupleCursor
	held    int

	cur  rel.Tuple
	have bool
	ri   int
}

func (c *loopJoinCursor) Next() (rel.Tuple, bool) {
	if !c.opened {
		c.opened = true
		if c.base != nil {
			c.baseCur = c.base.Scan()
		} else {
			for t, ok := c.buildC.Next(); ok; t, ok = c.buildC.Next() {
				c.right = append(c.right, t)
				c.meter.Grow(1)
				c.held++
			}
		}
	}
	for {
		if !c.have {
			t, ok := c.left.Next()
			if !ok {
				c.meter.Release(c.held)
				c.held = 0
				c.right = nil
				return nil, false
			}
			c.cur, c.have, c.ri = t, true, 0
			if c.baseCur != nil {
				c.baseCur.Reset()
			}
		}
		var b rel.Tuple
		if c.baseCur != nil {
			var ok bool
			if b, ok = c.baseCur.Next(); !ok {
				c.have = false
				continue
			}
		} else {
			if c.ri >= len(c.right) {
				c.have = false
				continue
			}
			b = c.right[c.ri]
			c.ri++
		}
		if c.cond.Holds(c.cur, b) {
			return c.cur.Concat(b), true
		}
	}
}
