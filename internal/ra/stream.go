package ra

// This file implements the streaming evaluator: a pull-based
// (Volcano-style) executor whose operators yield one tuple at a time
// through the Cursor interface instead of materializing every
// subexpression. Selections, constant selections, constant tagging and
// projections are fully pipelined (projection defers deduplication:
// every consumer in this algebra is either another pipelined operator
// or a sink that deduplicates through rel.Relation.Add, so duplicate
// tuples are consumed harmlessly). Joins materialize only their build
// side — a hash index on interned value IDs for equi-joins, a replayed
// scan for pure theta/cartesian joins — and stream the probe side.
// Union and difference remain blocking sinks, as set semantics
// requires.
//
// The point of the exercise is observability: the paper's dichotomy
// (Theorem 17) is about intermediate-result *sizes*, and the
// materialized evaluator can only report what it materializes. The
// streaming trace separates the two axes: TraceStep sizes and
// MaxIntermediate count the tuples that *flow* through each operator,
// while MaxResident records the peak number of tuples the executor
// actually *holds* in operator state (build tables, sinks) at any one
// moment. On the classical division expression the flow stays
// quadratic — the paper proves it must — but the resident footprint
// drops to linear, because the quadratic product is never stored.

import (
	"fmt"

	"radiv/internal/rel"
)

// Cursor is the pull-based tuple iterator of the streaming evaluator:
// Next returns the next tuple and true, or (nil, false) once the
// stream is exhausted. Yielded tuples may share storage with database
// relations and must be treated as read-only.
type Cursor interface {
	Next() (rel.Tuple, bool)
}

// EvalStreamed evaluates the expression with the streaming executor
// and returns the result relation. The result is always a fresh
// relation owned by the caller.
func EvalStreamed(e Expr, d *rel.Database) *rel.Relation {
	res, _ := EvalStreamedTraced(e, d)
	return res
}

// EvalStreamedTraced evaluates the expression with the streaming
// executor and also returns the trace. Step sizes count the tuples
// emitted by each operator — for dedup-deferred projections this can
// exceed the node's set cardinality, and for stored relations consumed
// in place (the subtrahend of a difference, the replayed side of a
// cartesian join) it is zero, because no tuples flow through the
// operator graph for them. MaxResident is filled in (see Trace). The
// expression is validated first, as in EvalTraced.
func EvalStreamedTraced(e Expr, d *rel.Database) (*rel.Relation, *Trace) {
	if err := Validate(e); err != nil {
		panic("ra: invalid expression: " + err.Error())
	}
	b := &streamBuilder{d: d, meter: &residentMeter{}}
	out := rel.NewRelation(e.Arity())
	var root *countNode
	if u, ok := e.(*Union); ok {
		// A root union's sink would be the result itself: drain both
		// inputs straight into the output relation instead, so the
		// result is built once and — per the MaxResident contract —
		// not counted as resident.
		var lc, rc Cursor
		var ln, rn *countNode
		lc, ln = b.cursor(u.L)
		rc, rn = b.cursor(u.E)
		root = &countNode{e: e, kids: []*countNode{ln, rn}}
		for t, ok := lc.Next(); ok; t, ok = lc.Next() {
			out.Add(t)
		}
		for t, ok := rc.Next(); ok; t, ok = rc.Next() {
			out.Add(t)
		}
		root.n = out.Len()
	} else {
		var cur Cursor
		cur, root = b.cursor(e)
		for t, ok := cur.Next(); ok; t, ok = cur.Next() {
			out.Add(t)
		}
	}
	tr := &Trace{}
	root.record(tr)
	tr.MaxResident = b.meter.max
	return out, tr
}

// residentMeter tracks the number of tuples currently held in operator
// state across the whole plan, and the peak. The final result relation
// is not counted: every evaluator must hold its output, so MaxResident
// measures only the executor's auxiliary state.
type residentMeter struct{ cur, max int }

func (m *residentMeter) grow(n int) {
	m.cur += n
	if m.cur > m.max {
		m.max = m.cur
	}
}

func (m *residentMeter) release(n int) { m.cur -= n }

// countNode mirrors one occurrence of an expression node in the plan.
// A subexpression shared between two places in the tree gets two
// countNodes, exactly as the materialized evaluator evaluates (and
// records) it twice.
type countNode struct {
	e    Expr
	n    int
	kids []*countNode
}

// record appends the subtree's steps to the trace in post-order,
// matching the materialized evaluator's step order.
func (c *countNode) record(tr *Trace) {
	for _, k := range c.kids {
		k.record(tr)
	}
	tr.record(c.e, c.n)
}

// countCursor wraps an operator cursor and counts its emissions into
// the plan's countNode.
type countCursor struct {
	in   Cursor
	node *countNode
}

func (c *countCursor) Next() (rel.Tuple, bool) {
	t, ok := c.in.Next()
	if ok {
		c.node.n++
	}
	return t, ok
}

// streamBuilder translates an expression tree into a cursor plan.
type streamBuilder struct {
	d     *rel.Database
	meter *residentMeter
}

// baseRel resolves a relation-name node against the database, with the
// same arity check the materialized evaluator performs.
func (b *streamBuilder) baseRel(n *Rel) *rel.Relation {
	r := b.d.Rel(n.Name)
	if r.Arity() != n.arity {
		panic(fmt.Sprintf("ra: relation %s has arity %d in database, expression expects %d", n.Name, r.Arity(), n.arity))
	}
	return r
}

func (b *streamBuilder) cursor(e Expr) (Cursor, *countNode) {
	node := &countNode{e: e}
	var cur Cursor
	switch n := e.(type) {
	case *Rel:
		cur = b.baseRel(n).Cursor()
	case *Union:
		l, ln := b.cursor(n.L)
		r, rn := b.cursor(n.E)
		node.kids = []*countNode{ln, rn}
		cur = &unionCursor{l: l, r: r, arity: n.Arity(), meter: b.meter}
	case *Diff:
		l, ln := b.cursor(n.L)
		node.kids = []*countNode{ln}
		dc := &diffCursor{in: l, arity: n.Arity(), meter: b.meter}
		if base, ok := n.E.(*Rel); ok {
			// The subtrahend is a stored relation: probe it in place,
			// holding nothing.
			dc.right = b.baseRel(base)
			node.kids = append(node.kids, &countNode{e: n.E})
		} else {
			rc, rn := b.cursor(n.E)
			dc.buildC = rc
			node.kids = append(node.kids, rn)
		}
		cur = dc
	case *Project:
		in, kn := b.cursor(n.E)
		node.kids = []*countNode{kn}
		cols := n.Cols
		cur = &mapCursor{in: in, f: func(t rel.Tuple) rel.Tuple { return t.Project(cols) }}
	case *Select:
		in, kn := b.cursor(n.E)
		node.kids = []*countNode{kn}
		i, op, j := n.I, n.Op, n.J
		cur = &filterCursor{in: in, keep: func(t rel.Tuple) bool { return op.Eval(t[i-1], t[j-1]) }}
	case *SelectConst:
		in, kn := b.cursor(n.E)
		node.kids = []*countNode{kn}
		i, cv := n.I, n.C
		cur = &filterCursor{in: in, keep: func(t rel.Tuple) bool { return t[i-1].Equal(cv) }}
	case *ConstTag:
		in, kn := b.cursor(n.E)
		node.kids = []*countNode{kn}
		tag := rel.Tuple{n.C}
		cur = &mapCursor{in: in, f: func(t rel.Tuple) rel.Tuple { return t.Concat(tag) }}
	case *Join:
		l, ln := b.cursor(n.L)
		node.kids = []*countNode{ln}
		if eqs := n.Cond.EqPairs(); len(eqs) > 0 {
			rc, rn := b.cursor(n.E)
			node.kids = append(node.kids, rn)
			cur = &hashJoinCursor{left: l, buildC: rc, cond: n.Cond, eqs: eqs, meter: b.meter}
		} else {
			lj := &loopJoinCursor{left: l, cond: n.Cond, meter: b.meter}
			if base, ok := n.E.(*Rel); ok {
				// Replay the stored relation in place per probe tuple.
				lj.base = b.baseRel(base)
				node.kids = append(node.kids, &countNode{e: n.E})
			} else {
				rc, rn := b.cursor(n.E)
				lj.buildC = rc
				node.kids = append(node.kids, rn)
			}
			cur = lj
		}
	default:
		panic(fmt.Sprintf("ra: unknown expression %T", e))
	}
	return &countCursor{in: cur, node: node}, node
}

// filterCursor streams the tuples of its input that satisfy keep.
type filterCursor struct {
	in   Cursor
	keep func(rel.Tuple) bool
}

func (c *filterCursor) Next() (rel.Tuple, bool) {
	for {
		t, ok := c.in.Next()
		if !ok {
			return nil, false
		}
		if c.keep(t) {
			return t, true
		}
	}
}

// mapCursor applies a per-tuple transformation (projection, constant
// tagging). Deduplication is deferred to the consuming sink.
type mapCursor struct {
	in Cursor
	f  func(rel.Tuple) rel.Tuple
}

func (c *mapCursor) Next() (rel.Tuple, bool) {
	t, ok := c.in.Next()
	if !ok {
		return nil, false
	}
	return c.f(t), true
}

// drainInto pulls in to exhaustion into the sink relation, growing the
// meter by one per tuple actually retained (duplicates cost nothing).
func drainInto(in Cursor, sink *rel.Relation, m *residentMeter) {
	for t, ok := in.Next(); ok; t, ok = in.Next() {
		if sink.Add(t) {
			m.grow(1)
		}
	}
}

// unionCursor is a blocking sink: both inputs are drained into one
// deduplicated relation, which is then streamed out. Its state is
// released once the output is exhausted.
type unionCursor struct {
	l, r   Cursor
	arity  int
	meter  *residentMeter
	opened bool
	out    *rel.Cursor
	held   int
}

func (c *unionCursor) Next() (rel.Tuple, bool) {
	if !c.opened {
		c.opened = true
		sink := rel.NewRelation(c.arity)
		drainInto(c.l, sink, c.meter)
		drainInto(c.r, sink, c.meter)
		c.held = sink.Len()
		c.out = sink.Cursor()
	}
	if c.out == nil {
		return nil, false
	}
	t, ok := c.out.Next()
	if !ok {
		// Drop the sink with its accounting, so the released tuples
		// really are reclaimable.
		c.meter.release(c.held)
		c.held = 0
		c.out = nil
	}
	return t, ok
}

// diffCursor materializes its subtrahend (unless it is a stored
// relation, which is probed in place) and streams the left input
// through the membership filter. Output deduplication is deferred to
// the consuming sink, so duplicate left tuples pass through.
type diffCursor struct {
	in     Cursor // left input, streaming
	buildC Cursor // right input; nil when right is a stored relation
	arity  int
	right  *rel.Relation
	meter  *residentMeter
	opened bool
	held   int
}

func (c *diffCursor) Next() (rel.Tuple, bool) {
	if !c.opened {
		c.opened = true
		if c.buildC != nil {
			c.right = rel.NewRelation(c.arity)
			drainInto(c.buildC, c.right, c.meter)
			c.held = c.right.Len()
		}
	}
	for {
		t, ok := c.in.Next()
		if !ok {
			c.meter.release(c.held)
			c.held = 0
			c.right = nil
			return nil, false
		}
		if !c.right.Contains(t) {
			return t, true
		}
	}
}

// hashJoinCursor materializes the right (build) input into a hash
// index keyed by joinKeyer — the same interned-ID keying the
// materialized evalJoin uses — and streams the left (probe) input
// against it. Cond.Holds verifies the full condition — equality atoms,
// residual atoms, hash collisions — on every candidate pair.
type hashJoinCursor struct {
	left   Cursor
	buildC Cursor
	cond   Cond
	eqs    [][2]int
	meter  *residentMeter

	opened bool
	keyer  *joinKeyer
	index  map[uint64][]rel.Tuple
	held   int

	cur   rel.Tuple
	cands []rel.Tuple
	ci    int
}

func (c *hashJoinCursor) Next() (rel.Tuple, bool) {
	if !c.opened {
		c.opened = true
		c.keyer = newJoinKeyer(c.eqs)
		c.index = make(map[uint64][]rel.Tuple)
		for t, ok := c.buildC.Next(); ok; t, ok = c.buildC.Next() {
			k, _ := c.keyer.key(t, 1)
			c.index[k] = append(c.index[k], t)
			c.meter.grow(1)
			c.held++
		}
	}
	for {
		for c.ci < len(c.cands) {
			b := c.cands[c.ci]
			c.ci++
			if c.cond.Holds(c.cur, b) {
				return c.cur.Concat(b), true
			}
		}
		t, ok := c.left.Next()
		if !ok {
			c.meter.release(c.held)
			c.held = 0
			c.index, c.cands = nil, nil
			return nil, false
		}
		c.cur = t
		c.cands, c.ci = nil, 0
		if k, ok := c.keyer.key(t, 0); ok {
			c.cands = c.index[k]
		}
	}
}

// loopJoinCursor handles joins without equality atoms (cartesian
// products and pure theta joins): the right input is replayed for
// every left tuple — in place via a resettable cursor when it is a
// stored relation, otherwise from a materialized buffer.
type loopJoinCursor struct {
	left   Cursor
	buildC Cursor        // right child; nil when base is set
	base   *rel.Relation // stored right relation, replayed in place
	cond   Cond
	meter  *residentMeter

	opened  bool
	right   []rel.Tuple
	baseCur *rel.Cursor
	held    int

	cur  rel.Tuple
	have bool
	ri   int
}

func (c *loopJoinCursor) Next() (rel.Tuple, bool) {
	if !c.opened {
		c.opened = true
		if c.base != nil {
			c.baseCur = c.base.Cursor()
		} else {
			for t, ok := c.buildC.Next(); ok; t, ok = c.buildC.Next() {
				c.right = append(c.right, t)
				c.meter.grow(1)
				c.held++
			}
		}
	}
	for {
		if !c.have {
			t, ok := c.left.Next()
			if !ok {
				c.meter.release(c.held)
				c.held = 0
				c.right = nil
				return nil, false
			}
			c.cur, c.have, c.ri = t, true, 0
			if c.baseCur != nil {
				c.baseCur.Reset()
			}
		}
		var b rel.Tuple
		if c.baseCur != nil {
			var ok bool
			if b, ok = c.baseCur.Next(); !ok {
				c.have = false
				continue
			}
		} else {
			if c.ri >= len(c.right) {
				c.have = false
				continue
			}
			b = c.right[c.ri]
			c.ri++
		}
		if c.cond.Holds(c.cur, b) {
			return c.cur.Concat(b), true
		}
	}
}
