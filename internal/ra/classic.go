package ra

import "radiv/internal/rel"

// This file collects well-known derived expressions that the paper
// discusses: the textbook RA expressions for relational division and
// for the set joins. They are deliberately written in the pure algebra
// of Definition 1 so their intermediate sizes can be measured; the
// paper's Proposition 26 proves every such expression is quadratic.

// DivisionExpr returns the classical RA expression for containment
// division R(A,B) ÷ S(B) over binary R and unary S:
//
//	π1(R) − π1( (π1(R) × S) − R )
//
// The subexpression π1(R) × S is the quadratic intermediate the paper
// proves unavoidable.
func DivisionExpr(rName, sName string) Expr {
	r := R(rName, 2)
	s := R(sName, 1)
	candidates := NewProject([]int{1}, r)
	missing := NewDiff(Product(candidates, s), r)
	return NewDiff(candidates, NewProject([]int{1}, missing))
}

// EqualityDivisionExpr returns an RA expression for equality division:
// the A's whose B-set equals S exactly. It is containment division
// minus the A's related to some B outside S:
//
//	(R ÷ S) − π1( R ⋈[2≠·] ... )
//
// concretely: π1(R ⋉ B∉S) is expressed as π1(R) − π1(R ⋈2=1 S)
// complemented via difference:
//
//	extras = π1( R − (π1(R) × S ∩ R) )   -- A's with a B outside S
//
// Implemented as: divide = DivisionExpr; extras = π1(R − σmatch);
// result = divide − extras.
func EqualityDivisionExpr(rName, sName string) Expr {
	r := R(rName, 2)
	s := R(sName, 1)
	// Tuples of R whose B occurs in S: π1,2(σ2=3(R × S)).
	inS := NewProject([]int{1, 2}, NewSelect(2, OpEq, 3, Product(r, s)))
	extras := NewProject([]int{1}, NewDiff(r, inS))
	return NewDiff(DivisionExpr(rName, sName), extras)
}

// SetContainmentJoinExpr returns the classical RA expression for the
// set-containment join R(A,B) ⋈_{B⊇D} S(C,D) over binary R and S:
// pairs (a,c) such that {b | R(a,b)} ⊇ {d | S(c,d)}.
//
//	(π1(R) × π1(S)) − π1,3( (π1(R) × S) − π1,4,3( (R × π1(S)) ⋈... ) )
//
// concretely: pairs (a,c,d) with S(c,d) but not R(a,d) witness
// non-containment; subtract their (a,c) projection from all pairs.
func SetContainmentJoinExpr(rName, sName string) Expr {
	r := R(rName, 2)
	s := R(sName, 2)
	allPairs := Product(NewProject([]int{1}, r), NewProject([]int{1}, s))
	// triples (a, c, d) with a ∈ π1(R) and S(c,d):
	triples := Product(NewProject([]int{1}, r), s)
	// witnesses of non-containment: triples where (a,d) ∉ R. Compute
	// triples minus the triples whose (a,d) ∈ R:
	// good = π1,3,4( σ1=3(R × S) )? We need (a,c,d) with R(a,d)∧S(c,d):
	// join R and S on B=D: (a,b,c,d) with b=d → project (a,c,d).
	good := NewProject([]int{1, 3, 4}, NewJoin(r, Eq(2, 2), s))
	bad := NewDiff(triples, good)
	return NewDiff(allPairs, NewProject([]int{1, 2}, bad))
}

// SetEqualityJoinExpr returns an RA expression for the set-equality
// join of binary R(A,B) and S(C,D): pairs (a,c) with
// {b | R(a,b)} = {d | S(c,d)}. It is the intersection of containment
// both ways.
func SetEqualityJoinExpr(rName, sName string) Expr {
	fwd := SetContainmentJoinExpr(rName, sName)
	bwdSwapped := SetContainmentJoinExpr(sName, rName) // (c,a) pairs
	bwd := NewProject([]int{2, 1}, bwdSwapped)
	// Intersection via difference: fwd − (fwd − bwd).
	return NewDiff(fwd, NewDiff(fwd, bwd))
}

// Intersect builds E1 ∩ E2 = E1 − (E1 − E2).
func Intersect(l, r Expr) Expr { return NewDiff(l, NewDiff(l, r)) }

// EquiSemijoinExpr expresses the equi-semijoin E1 ⋉θ E2 in RA in the
// linear way shown after Theorem 18 in the paper: project E2 onto the
// columns used by θ, join, and project back onto E1's columns. θ must
// be equi-only.
func EquiSemijoinExpr(l Expr, c Cond, r Expr) Expr {
	if !c.IsEquiOnly() {
		panic("ra: EquiSemijoinExpr requires an equi-condition")
	}
	eqs := c.EqPairs()
	if len(eqs) == 0 {
		panic("ra: EquiSemijoinExpr requires at least one equality")
	}
	rcols := make([]int, len(eqs))
	for i, p := range eqs {
		rcols[i] = p[1]
	}
	proj := NewProject(rcols, r)
	cond := make(Cond, len(eqs))
	for i, p := range eqs {
		cond[i] = Atom{p[0], OpEq, i + 1}
	}
	lcols := make([]int, l.Arity())
	for i := range lcols {
		lcols[i] = i + 1
	}
	return NewProject(lcols, NewJoin(l, cond, proj))
}

// Divide computes R ÷ S directly on relations (containment semantics):
// the set of a such that {b | (a,b) ∈ R} ⊇ S. It is the reference
// implementation used to validate both the RA expression and the
// algorithms in internal/division. S empty yields π1(R), matching the
// algebraic identity.
func Divide(r, s *rel.Relation) *rel.Relation {
	if r.Arity() != 2 || s.Arity() != 1 {
		panic("ra: Divide expects R binary and S unary")
	}
	groups := make(map[string]map[string]bool)
	reps := make(map[string]rel.Value)
	for _, t := range r.Tuples() {
		k := rel.Tuple{t[0]}.Key()
		if groups[k] == nil {
			groups[k] = make(map[string]bool)
			reps[k] = t[0]
		}
		groups[k][rel.Tuple{t[1]}.Key()] = true
	}
	out := rel.NewRelation(1)
	stp := s.Tuples()
	for k, set := range groups {
		ok := true
		for _, st := range stp {
			if !set[rel.Tuple{st[0]}.Key()] {
				ok = false
				break
			}
		}
		if ok {
			out.Add(rel.Tuple{reps[k]})
		}
	}
	return out
}
