package ra

import (
	"strings"
	"testing"

	"radiv/internal/rel"
)

func beerSchema() rel.Schema {
	return rel.NewSchema(map[string]int{"Likes": 2, "Serves": 2, "Visits": 2})
}

func TestOpEval(t *testing.T) {
	a, b := rel.Int(1), rel.Int(2)
	if !OpEq.Eval(a, a) || OpEq.Eval(a, b) {
		t.Error("=")
	}
	if !OpNe.Eval(a, b) || OpNe.Eval(a, a) {
		t.Error("!=")
	}
	if !OpLt.Eval(a, b) || OpLt.Eval(b, a) || OpLt.Eval(a, a) {
		t.Error("<")
	}
	if !OpGt.Eval(b, a) || OpGt.Eval(a, b) {
		t.Error(">")
	}
}

func TestCondHoldsAndPairs(t *testing.T) {
	c := Cond{{1, OpEq, 2}, {2, OpLt, 1}}
	a := rel.Ints(5, 1)
	b := rel.Ints(9, 5)
	if !c.Holds(a, b) {
		t.Error("condition should hold: a1=b2 (5=5) and a2<b1 (1<9)")
	}
	if c.Holds(b, a) {
		t.Error("condition should fail on swapped tuples")
	}
	if len(c.EqPairs()) != 1 || c.EqPairs()[0] != [2]int{1, 2} {
		t.Errorf("EqPairs = %v", c.EqPairs())
	}
	if len(c.PairsOf(OpLt)) != 1 {
		t.Errorf("PairsOf(<) = %v", c.PairsOf(OpLt))
	}
	if c.IsEquiOnly() {
		t.Error("mixed condition reported equi-only")
	}
	if !Eq(1, 1).IsEquiOnly() {
		t.Error("Eq should be equi-only")
	}
}

func TestCondValidate(t *testing.T) {
	if err := Eq(1, 2).Validate(1, 2); err != nil {
		t.Errorf("valid condition rejected: %v", err)
	}
	if err := Eq(2, 1).Validate(1, 2); err == nil {
		t.Error("left index out of range accepted")
	}
	if err := Eq(1, 3).Validate(1, 2); err == nil {
		t.Error("right index out of range accepted")
	}
}

func TestArities(t *testing.T) {
	r := R("R", 2)
	s := R("S", 1)
	if got := NewProject([]int{1, 1, 2}, r).Arity(); got != 3 {
		t.Errorf("project arity = %d", got)
	}
	if got := NewConstTag(rel.Int(7), r).Arity(); got != 3 {
		t.Errorf("tag arity = %d", got)
	}
	if got := Product(r, s).Arity(); got != 3 {
		t.Errorf("product arity = %d", got)
	}
	if got := NewUnion(r, r).Arity(); got != 2 {
		t.Errorf("union arity = %d", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	r := R("R", 2)
	s := R("S", 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("union arity", func() { NewUnion(r, s) })
	mustPanic("diff arity", func() { NewDiff(r, s) })
	mustPanic("project range", func() { NewProject([]int{3}, r) })
	mustPanic("select range", func() { NewSelect(1, OpEq, 3, r) })
	mustPanic("selectc range", func() { NewSelectConst(3, rel.Int(1), r) })
	mustPanic("join cond", func() { NewJoin(r, Eq(3, 1), s) })
}

func TestWalkAndMetadata(t *testing.T) {
	e := NewDiff(
		NewProject([]int{1}, R("R", 2)),
		NewProject([]int{1}, NewJoin(R("R", 2), Eq(2, 1), NewConstTag(rel.Int(9), R("S", 1)))),
	)
	subs := Subexpressions(e)
	if len(subs) != 8 {
		t.Errorf("Subexpressions = %d nodes", len(subs))
	}
	names := RelationNames(e)
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Errorf("RelationNames = %v", names)
	}
	cs := Constants(e)
	if cs.Len() != 1 || !cs.Contains(rel.Int(9)) {
		t.Errorf("Constants = %v", cs.Values())
	}
	if !IsEquiOnly(e) {
		t.Error("equi-only expression misreported")
	}
	lt := NewJoin(R("R", 2), Cond{{1, OpLt, 1}}, R("S", 1))
	if IsEquiOnly(lt) {
		t.Error("< join reported equi-only")
	}
}

func TestStringRendering(t *testing.T) {
	e := NewJoin(R("R", 2), Eq(2, 1), R("S", 1))
	if got := e.String(); got != "join[2=1](R, S)" {
		t.Errorf("String = %q", got)
	}
	sc := NewSelectConst(1, rel.Str("x"), R("S", 1))
	if !strings.Contains(sc.String(), "1='x'") {
		t.Errorf("String = %q", sc.String())
	}
	if Cond(nil).String() != "true" {
		t.Error("empty condition should render as true")
	}
}

func evalOn(t *testing.T, e Expr, d *rel.Database) *rel.Relation {
	t.Helper()
	return Eval(e, d)
}

func smallDB() *rel.Database {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 2, "S": 1}))
	d.AddInts("R", 1, 10)
	d.AddInts("R", 1, 20)
	d.AddInts("R", 2, 10)
	d.AddInts("S", 10)
	d.AddInts("S", 20)
	return d
}

func TestEvalBasicOperators(t *testing.T) {
	d := smallDB()
	r := R("R", 2)
	s := R("S", 1)

	if got := evalOn(t, r, d); got.Len() != 3 {
		t.Errorf("R = %v", got)
	}
	if got := evalOn(t, NewProject([]int{1}, r), d); got.Len() != 2 {
		t.Errorf("π1(R) = %v", got)
	}
	union := NewUnion(NewProject([]int{2}, r), s)
	if got := evalOn(t, union, d); got.Len() != 2 {
		t.Errorf("π2(R) ∪ S = %v", got)
	}
	diff := NewDiff(s, NewProject([]int{2}, r))
	if got := evalOn(t, diff, d); got.Len() != 0 {
		t.Errorf("S − π2(R) = %v", got)
	}
}

func TestEvalSelect(t *testing.T) {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"P": 2}))
	d.AddInts("P", 1, 1)
	d.AddInts("P", 1, 2)
	d.AddInts("P", 3, 2)
	p := R("P", 2)
	if got := Eval(NewSelect(1, OpEq, 2, p), d); got.Len() != 1 || !got.Contains(rel.Ints(1, 1)) {
		t.Errorf("σ1=2 = %v", got)
	}
	if got := Eval(NewSelect(1, OpLt, 2, p), d); got.Len() != 1 || !got.Contains(rel.Ints(1, 2)) {
		t.Errorf("σ1<2 = %v", got)
	}
	if got := Eval(NewSelect(1, OpGt, 2, p), d); got.Len() != 1 || !got.Contains(rel.Ints(3, 2)) {
		t.Errorf("σ1>2 = %v", got)
	}
	if got := Eval(NewSelect(1, OpNe, 2, p), d); got.Len() != 2 {
		t.Errorf("σ1≠2 = %v", got)
	}
	if got := Eval(NewSelectConst(1, rel.Int(1), p), d); got.Len() != 2 {
		t.Errorf("σ1='1' = %v", got)
	}
}

func TestEvalConstTag(t *testing.T) {
	d := smallDB()
	e := NewConstTag(rel.Int(99), R("S", 1))
	got := Eval(e, d)
	if got.Arity() != 2 || !got.Contains(rel.Ints(10, 99)) || !got.Contains(rel.Ints(20, 99)) {
		t.Errorf("τ99(S) = %v", got)
	}
}

func TestEvalJoinHashAndNested(t *testing.T) {
	d := smallDB()
	r := R("R", 2)
	s := R("S", 1)
	// Equi-join R ⋈2=1 S.
	j := NewJoin(r, Eq(2, 1), s)
	got := Eval(j, d)
	if got.Len() != 3 || !got.Contains(rel.Ints(1, 10, 10)) {
		t.Errorf("R ⋈2=1 S = %v", got)
	}
	// Product.
	if got := Eval(Product(r, s), d); got.Len() != 6 {
		t.Errorf("R × S = %v", got)
	}
	// θ-join with < only (nested loop path): pairs of S values s1 < s2.
	lt := NewJoin(s, Cond{{1, OpLt, 1}}, s)
	if got := Eval(lt, d); got.Len() != 1 || !got.Contains(rel.Ints(10, 20)) {
		t.Errorf("S ⋈1<1 S = %v", got)
	}
	// Mixed condition: equality plus inequality residual.
	mixed := NewJoin(r, Cond{{1, OpEq, 1}, {2, OpNe, 2}}, r)
	got = Eval(mixed, d)
	if got.Len() != 2 { // (1,10)-(1,20) and (1,20)-(1,10)
		t.Errorf("mixed join = %v", got)
	}
}

func TestEvalTrace(t *testing.T) {
	d := smallDB()
	e := DivisionExpr("R", "S")
	res, tr := EvalTraced(e, d)
	if res.Len() != 1 || !res.Contains(rel.Ints(1)) {
		t.Errorf("R ÷ S = %v", res)
	}
	if tr.MaxIntermediate < 4 { // π1(R) × S has 2*2 = 4 tuples
		t.Errorf("MaxIntermediate = %d, expected ≥ 4", tr.MaxIntermediate)
	}
	if len(tr.Steps) == 0 || tr.TotalTuples == 0 {
		t.Error("trace not recorded")
	}
	dom := tr.Dominating()
	if dom.Size != tr.MaxIntermediate {
		t.Error("Dominating disagrees with MaxIntermediate")
	}
	if !strings.Contains(tr.String(), "max intermediate") {
		t.Error("trace String missing summary")
	}
}

func TestEvalArityMismatchPanics(t *testing.T) {
	d := smallDB()
	defer func() {
		if recover() == nil {
			t.Error("evaluating R with wrong declared arity should panic")
		}
	}()
	Eval(R("R", 3), d)
}

func TestDesugarEquivalence(t *testing.T) {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"P": 2}))
	d.AddInts("P", 1, 1)
	d.AddInts("P", 1, 2)
	d.AddInts("P", 3, 2)
	d.AddInts("P", 5, 4)
	p := R("P", 2)
	exprs := []Expr{
		NewSelectConst(1, rel.Int(1), p),
		NewSelect(1, OpNe, 2, p),
		NewSelect(1, OpGt, 2, p),
		NewUnion(NewSelect(1, OpGt, 2, p), NewSelectConst(2, rel.Int(2), p)),
	}
	for _, e := range exprs {
		want := Eval(e, d)
		got := Eval(Desugar(e), d)
		if !want.Equal(got) {
			t.Errorf("Desugar(%s) changed semantics:\n%s\nvs\n%s", e, want, got)
		}
	}
	// Desugared expressions use only primitive operators.
	var usesDerived bool
	Walk(Desugar(exprs[0]), func(x Expr) {
		switch n := x.(type) {
		case *SelectConst:
			usesDerived = true
		case *Select:
			if n.Op == OpNe || n.Op == OpGt {
				usesDerived = true
			}
		}
	})
	if usesDerived {
		t.Error("Desugar left derived forms in place")
	}
}
