// This file states the three engine contracts the radivvet suite
// enforces, with pointers to the analyzers that enforce them. It is
// documentation only.
//
// # Contract 1: evaluator results are caller-owned
//
// Every relation an exported evaluator entry point returns belongs to
// the caller: mutating it must never write through into a store. The
// storage layer hands out aliased views by documented contract
// (rel.Store.View, rel.Materialized's aliased flag, Database.Rel);
// the layers above must snapshot — Clone, or the conditional clone on
// Materialized's flag — before a store-reachable relation escapes.
// PRs 2–4 fixed this class by hand after ra.Eval returned the
// database's own relation for a bare-Rel root. Enforced by
// radiv/internal/analysis/callerowned.
//
// # Contract 2: published snapshots are immutable; interning goes
// through the epoch writer
//
// A published snapshot (rel.Snapshot, shard.Snapshot) is sealed:
// every relation and dictionary reachable from it may be read from
// any goroutine with no coordination, and must never be written —
// no Relation.Add, Interner.Intern, or IDMap.Intern into snapshot
// state, anywhere. Mutation goes through the epoch writer
// (rel.Epoch, shard.Database) and becomes visible only at Publish.
// The same law covers the engine.Stream* exchange family: worker
// callbacks must not intern on captured state — new values are
// interned through the writer before the exchange — while reads of
// sealed snapshot dictionaries are legal even mid-exchange, in the
// routed exchanges too (the ban this contract used to impose there).
// A violation is a data race the race detector only sees under lucky
// schedules; the analyzer sees it lexically. Enforced by
// radiv/internal/analysis/quiescence.
//
// # Contract 3: pooled batches are released exactly once
//
// A rel.Batch from NewBatch/NewBatchSized or a cursor's NextBatch
// owns pooled column arrays. The holder must Release exactly once on
// every path or hand the batch off downstream; a missed Release
// leaks pool capacity (the skip-empty-batch loop bug shape), and a
// double Release puts live storage back in the pool for two future
// acquirers to share. View batches (BatchScan provenance) are exempt:
// their Release is a no-op. Enforced by
// radiv/internal/analysis/batchrelease.
//
// # Contract 4: abort paths hold no unregistered pooled batch
//
// Governed execution (internal/exec) adds a recoverable kind of
// unwinding: exec.Throw and the Governor checkpoints Check and
// CheckResident panic during *normal operation* — on cancellation or
// a budget trip — and the boundary recovery (Governor.Recover) runs
// only the cleanups registered with the governor. The contract has
// two halves. First, checkpoints fire only at pull boundaries, where
// the calling frame holds no pooled batch (check, then pull); a
// batch definitely held across a checkpoint call leaks live pool
// count on every abort and is flagged by the batchrelease extension.
// Second, any cursor that retains pooled batches across calls
// implements rel.BatchHolder and is registered at construction
// (Governor.Watch / Meter.Watch), so the boundary can release its
// held batches after all workers have joined. Deferred releases are
// accepted — defers run during the unwind. Enforced by
// radiv/internal/analysis/batchrelease (the governor-checkpoint
// rule), and dynamically by the internal/faultinject suites, which
// drive every abort path and assert the pool returns to its
// pre-query level.
//
// A fourth, stylistic rule rides along: panic messages carry their
// package prefix (ra:, sa:, xra:, …) so a query-abort names the layer
// that gave up. Enforced by radiv/internal/analysis/panicprefix.
package analysis
