// This file states the three engine contracts the radivvet suite
// enforces, with pointers to the analyzers that enforce them. It is
// documentation only.
//
// # Contract 1: evaluator results are caller-owned
//
// Every relation an exported evaluator entry point returns belongs to
// the caller: mutating it must never write through into a store. The
// storage layer hands out aliased views by documented contract
// (rel.Store.View, rel.Materialized's aliased flag, Database.Rel);
// the layers above must snapshot — Clone, or the conditional clone on
// Materialized's flag — before a store-reachable relation escapes.
// PRs 2–4 fixed this class by hand after ra.Eval returned the
// database's own relation for a bare-Rel root. Enforced by
// radiv/internal/analysis/callerowned.
//
// # Contract 2: dictionaries are quiescent inside exchange workers
//
// The engine.Stream* exchange family has the router intern into
// dictionaries while worker goroutines read them; rel.Interner is
// read-while-intern safe in exactly one direction — workers may read
// only in the sharded (non-routed) exchanges, and must never intern,
// Add, or Dict-write anywhere. Worker-side interning is a data race
// the race detector only sees under lucky schedules; the analyzer
// sees it lexically. Enforced by radiv/internal/analysis/quiescence.
//
// # Contract 3: pooled batches are released exactly once
//
// A rel.Batch from NewBatch/NewBatchSized or a cursor's NextBatch
// owns pooled column arrays. The holder must Release exactly once on
// every path or hand the batch off downstream; a missed Release
// leaks pool capacity (the skip-empty-batch loop bug shape), and a
// double Release puts live storage back in the pool for two future
// acquirers to share. View batches (BatchScan provenance) are exempt:
// their Release is a no-op. Enforced by
// radiv/internal/analysis/batchrelease.
//
// A fourth, stylistic rule rides along: panic messages carry their
// package prefix (ra:, sa:, xra:, …) so a query-abort names the layer
// that gave up. Enforced by radiv/internal/analysis/panicprefix.
package analysis
