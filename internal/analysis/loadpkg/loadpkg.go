// Package loadpkg loads and type-checks Go packages for the analysis
// suite using only the standard library: package metadata comes from
// `go list -deps -json` (the go toolchain is the one build-time
// dependency the repository already has), syntax from go/parser, and
// types from go/types checking every package from source in dependency
// order. It is a minimal, offline stand-in for
// golang.org/x/tools/go/packages — enough surface for a vet-style
// driver, nothing more.
//
// Module packages are always checked with function bodies and full
// type information (the analyzers need both); standard-library
// dependencies are checked with IgnoreFuncBodies, which yields their
// complete export-level API at a fraction of the cost. Type identity
// is global per import path — every package in one Loader shares one
// *types.Package per path — so analyzers can compare types resolved
// through different importers.
package loadpkg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// Package is one fully type-checked module package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader loads packages rooted at one module directory. It is not
// safe for concurrent use.
type Loader struct {
	// ModuleDir is the directory `go list` runs in (the module root,
	// or any directory inside it).
	ModuleDir string
	// Fset is shared by every package the loader returns.
	Fset *token.FileSet

	meta  map[string]*listedPackage
	typed map[string]*types.Package // every checked package, by import path
	full  map[string]*Package       // module packages, with syntax and info
	sizes types.Sizes
}

// New returns a loader rooted at dir.
func New(dir string) *Loader {
	return &Loader{
		ModuleDir: dir,
		Fset:      token.NewFileSet(),
		meta:      make(map[string]*listedPackage),
		typed:     make(map[string]*types.Package),
		full:      make(map[string]*Package),
		sizes:     types.SizesFor("gc", runtime.GOARCH),
	}
}

// Targets loads the packages matching the go list patterns (with
// their whole dependency closure) and returns the pattern roots in
// `go list` order, fully type-checked.
func (l *Loader) Targets(patterns ...string) ([]*Package, error) {
	roots, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range roots {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("loadpkg: %s is a standard-library package, not a module target", path)
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadDir loads the single package rooted at dir — which may live
// under a testdata directory, invisible to go list patterns — parsing
// every non-test .go file and resolving its imports through the
// loader's module. This is how analysistest loads fixtures.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") && !e.IsDir() {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loadpkg: no Go files in %s", dir)
	}
	lp := &listedPackage{ImportPath: dir, Dir: dir, GoFiles: files}
	asts, err := l.parse(lp)
	if err != nil {
		return nil, err
	}
	lp.Name = asts[0].Name.Name
	for _, f := range asts {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			lp.Imports = append(lp.Imports, path)
		}
	}
	l.meta[lp.ImportPath] = lp
	return l.check(lp, asts)
}

// list runs go list over the patterns, records metadata for the whole
// dependency closure, and returns the pattern roots.
func (l *Loader) list(patterns []string) ([]string, error) {
	args := append([]string{
		"list", "-e", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,ImportMap,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	// The loader type-checks from source; cgo packages have no pure-Go
	// file list, so resolve the build list without cgo.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loadpkg: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var roots []string
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loadpkg: decoding go list output: %v", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("loadpkg: %s: %s", p.ImportPath, p.Error.Err)
		}
		if _, ok := l.meta[p.ImportPath]; !ok {
			cp := p
			l.meta[p.ImportPath] = &cp
		}
		if !p.DepOnly {
			roots = append(roots, p.ImportPath)
		}
	}
	return roots, nil
}

// load type-checks the package at the import path (dependencies
// first), returning its full form for module packages and nil for
// standard-library ones (whose *types.Package lives in l.typed).
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.full[path]; ok {
		return p, nil
	}
	if _, ok := l.typed[path]; ok {
		return nil, nil // standard library, already checked
	}
	lp, ok := l.meta[path]
	if !ok {
		// An import not in any closure listed so far (a fixture's
		// import, say): fetch its metadata on demand.
		if _, err := l.list([]string{path}); err != nil {
			return nil, err
		}
		if lp, ok = l.meta[path]; !ok {
			return nil, fmt.Errorf("loadpkg: go list did not describe %s", path)
		}
	}
	if path == "unsafe" {
		l.typed[path] = types.Unsafe
		return nil, nil
	}
	asts, err := l.parse(lp)
	if err != nil {
		return nil, err
	}
	return l.check(lp, asts)
}

// parse parses the package's Go files with comments (the runner's
// suppression directives and analysistest's want-comments need them).
func (l *Loader) parse(lp *listedPackage) ([]*ast.File, error) {
	var asts []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loadpkg: %v", err)
		}
		asts = append(asts, f)
	}
	return asts, nil
}

// check type-checks one parsed package, loading its imports first.
func (l *Loader) check(lp *listedPackage, asts []*ast.File) (*Package, error) {
	var firstErr error
	conf := types.Config{
		Importer:         l.importerFor(lp),
		Sizes:            l.sizes,
		IgnoreFuncBodies: lp.Standard,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	var info *types.Info
	if !lp.Standard {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
	}
	tpkg, err := conf.Check(lp.ImportPath, l.Fset, asts, info)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("loadpkg: type-checking %s: %v", lp.ImportPath, firstErr)
	}
	l.typed[lp.ImportPath] = tpkg
	if lp.Standard {
		return nil, nil
	}
	p := &Package{
		ImportPath: lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Fset:       l.Fset,
		Files:      asts,
		Types:      tpkg,
		TypesInfo:  info,
	}
	l.full[lp.ImportPath] = p
	return p, nil
}

// importerFor resolves the import paths appearing in lp's sources,
// mapping through lp.ImportMap (vendored standard-library deps) and
// recursing into the loader.
func (l *Loader) importerFor(lp *listedPackage) types.Importer {
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		if _, err := l.load(path); err != nil {
			return nil, err
		}
		tp, ok := l.typed[path]
		if !ok {
			return nil, fmt.Errorf("loadpkg: import %q did not resolve", path)
		}
		return tp, nil
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
