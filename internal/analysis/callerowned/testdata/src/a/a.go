// Package a reproduces PR 2's bare-Rel aliasing bug class: an
// evaluator whose root is a plain relation name returning the store's
// own relation, so the caller's Add writes through into the database.
// The canonical conditional-clone ownership pattern must stay silent.
package a

import "radiv/internal/rel"

// EvalBare is the historical bug shape: the bare-Rel root handed
// straight back from the store.
func EvalBare(d *rel.Database, name string) *rel.Relation {
	return d.Rel(name) // want `store-owned relation`
}

// EvalView launders the store's view through a local before returning
// it.
func EvalView(s rel.Store, name string) rel.StoredRel {
	v := s.View(name)
	return v // want `store-owned relation`
}

// EvalMaterialized drops the aliased flag of the (relation, bool)
// contract shape and returns the possibly-aliased relation.
func EvalMaterialized(s rel.Store, name string) *rel.Relation {
	r, _ := rel.Materialized(s, name)
	return r // want `store-owned relation`
}

// EvalForwarded forwards the pair wholesale, pushing the ownership
// decision onto a caller who never sees the contract.
func EvalForwarded(s rel.Store, name string) (*rel.Relation, bool) {
	return rel.Materialized(s, name) // want `possibly-aliased`
}

// EvalCloned is the canonical fix: conditional clone on the aliased
// flag before the result escapes.
func EvalCloned(s rel.Store, name string) *rel.Relation {
	r, aliased := rel.Materialized(s, name)
	if aliased {
		r = r.Clone()
	}
	return r
}

// EvalDirectClone snapshots unconditionally.
func EvalDirectClone(d *rel.Database, name string) *rel.Relation {
	return d.Rel(name).Clone()
}

// EvalFresh builds its result from scratch: operator results are
// always caller-owned.
func EvalFresh(s rel.Store, name string) *rel.Relation {
	v := s.View(name)
	out := rel.NewRelation(v.Arity())
	c := v.Scan()
	for t, ok := c.Next(); ok; t, ok = c.Next() {
		out.Add(t)
	}
	return out
}

// probe holds interior views legitimately: unexported helpers are the
// evaluator internals the contract explicitly permits to alias.
func probe(s rel.Store, name string) rel.StoredRel {
	return s.View(name)
}

// EvalUsesProbe consumes an interior view without returning it.
func EvalUsesProbe(s rel.Store, name string, t rel.Tuple) bool {
	return probe(s, name).Contains(t)
}
