// Package b covers the method half of the contract: exported methods
// are evaluator entry points too (plan.Plan.Execute, the engine
// wrappers), so a method handing back a store view is the same bug as
// a function doing it. Unexported methods stay interior.
package b

import "radiv/internal/rel"

// Engine wraps a store behind evaluator-style methods.
type Engine struct {
	d *rel.Database
}

// Rel is the method form of the bare-Rel bug: the store's own
// relation escapes through an exported method.
func (e *Engine) Rel(name string) *rel.Relation {
	return e.d.Rel(name) // want `store-owned relation`
}

// View launders the view through a local first.
func (e *Engine) View(s rel.Store, name string) rel.StoredRel {
	v := s.View(name)
	return v // want `store-owned relation`
}

// Forward pushes the (relation, bool) pair wholesale onto the caller.
func (e *Engine) Forward(s rel.Store, name string) (*rel.Relation, bool) {
	return rel.Materialized(s, name) // want `possibly-aliased`
}

// Execute is the canonical entry-point shape: conditional clone on
// the aliased flag, so the result is caller-owned. Must stay silent.
func (e *Engine) Execute(s rel.Store, name string) *rel.Relation {
	r, aliased := rel.Materialized(s, name)
	if aliased {
		r = r.Clone()
	}
	return r
}

// Snapshot clones unconditionally. Must stay silent.
func (e *Engine) Snapshot(name string) *rel.Relation {
	return e.d.Rel(name).Clone()
}

// Fresh builds its result from scratch. Must stay silent.
func (e *Engine) Fresh(s rel.Store, name string) *rel.Relation {
	v := s.View(name)
	out := rel.NewRelation(v.Arity())
	c := v.Scan()
	for t, ok := c.Next(); ok; t, ok = c.Next() {
		out.Add(t)
	}
	return out
}

// view is an unexported method: interior helpers may hold views by
// design. Must stay silent.
func (e *Engine) view(name string) *rel.Relation {
	return e.d.Rel(name)
}

// Contains consumes the interior view without returning it. Must stay
// silent.
func (e *Engine) Contains(name string, t rel.Tuple) bool {
	return e.view(name).Contains(t)
}
