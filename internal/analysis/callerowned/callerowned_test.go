package callerowned_test

import (
	"testing"

	"radiv/internal/analysis/analysistest"
	"radiv/internal/analysis/callerowned"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), callerowned.Analyzer, "a", "b")
}
