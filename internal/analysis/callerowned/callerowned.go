// Package callerowned enforces the caller-owned-result contract of
// the evaluators: an exported entry point that returns a
// *rel.Relation or rel.StoredRel must never hand back a relation
// still reachable from a store — the aliasing bug class PRs 2–4 fixed
// by hand, where ra.Eval on a bare-Rel root returned the database's
// own relation and a caller's Add wrote through into the store.
//
// The check is a lexical taint analysis over each exported
// package-level function body. Taint sources are the view-yielding
// calls of the storage layer:
//
//   - any call whose single result is the rel.StoredRel interface
//     (Store.View, rel.CheckView);
//   - any method named Rel returning *rel.Relation (Database.Rel and
//     the shard layer's delegates);
//   - any call returning (*rel.Relation, bool) — the possibly-aliased
//     shape of rel.Materialized and BaseResolver.Resolve, whose bool
//     reports whether the store handed out its own storage.
//
// Assigning a clean value — r.Clone(), rel.NewRelation, an operator
// result — clears a variable's taint, which accepts the canonical
// root-ownership pattern:
//
//	r, aliased := resolve(...)
//	if aliased {
//		r = r.Clone()
//	}
//	return r
//
// (the conditional clone reassigns r from a sanitizer before any
// return). Returning a tainted variable or a source call's result
// directly is flagged.
//
// Scope: exported package-level functions AND exported methods,
// outside package rel itself — the storage layer hands out views by
// documented contract (Store.View, Materialized's aliased flag); the
// ownership contract binds the layers above it, entry-point methods
// (plan.Plan.Execute, shard accessors) included. The shard layer's
// documented view accessors (ShardRel) carry //radivvet:ignore
// directives instead, mirroring package rel's exemption. Function
// literals are not analyzed (and taint neither enters nor escapes
// them): interior cursors and sinks hold read-only views by design.
package callerowned

import (
	"go/ast"
	"go/types"

	"radiv/internal/analysis"
)

// Analyzer is the callerowned check.
var Analyzer = &analysis.Analyzer{
	Name: "callerowned",
	Doc:  "exported functions must not return store-owned (aliased) relations without a Clone/Materialized snapshot on the path",
	Run:  run,
}

const relPath = "radiv/internal/rel"

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == relPath {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc runs the taint walk over one function body in source
// order.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	tainted := make(map[types.Object]bool)

	var exprTaint func(e ast.Expr) bool
	exprTaint = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			return obj != nil && tainted[obj]
		case *ast.CallExpr:
			return isViewSource(pass, e)
		case *ast.TypeAssertExpr:
			return exprTaint(e.X)
		}
		return false
	}

	setTaint := func(lhs ast.Expr, v bool) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			tainted[obj] = v
		}
	}

	handleAssign := func(lhs, rhs []ast.Expr) {
		if len(rhs) == 1 && len(lhs) > 1 {
			// Multi-value call: taint flows into the first result of a
			// (possibly-aliased relation, bool) source.
			call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
			taint := ok && isAliasedPairSource(pass, call)
			setTaint(lhs[0], taint)
			for _, l := range lhs[1:] {
				setTaint(l, false)
			}
			return
		}
		for i, l := range lhs {
			if i < len(rhs) {
				setTaint(l, exprTaint(rhs[i]))
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // interior closures hold read-only views by design
		case *ast.AssignStmt:
			handleAssign(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			if len(n.Values) > 0 {
				lhs := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					lhs[i] = id
				}
				handleAssign(lhs, n.Values)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if exprTaint(res) {
					pass.Reportf(res.Pos(), "%s returns a store-owned relation (aliased view) without a Clone/Materialized snapshot on the path; evaluator results must be caller-owned", fd.Name.Name)
				} else if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && len(n.Results) == 1 && isAliasedPairSource(pass, call) {
					pass.Reportf(res.Pos(), "%s forwards a possibly-aliased (relation, bool) result without consuming the aliased flag; clone before returning", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// isViewSource reports whether the call's single result is a stored
// view: the rel.StoredRel interface, or *rel.Relation from a method
// named Rel.
func isViewSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	if analysis.IsNamed(tv.Type, relPath, "StoredRel") {
		return true
	}
	if sel, _ := analysis.MethodCall(pass, call); sel != nil && sel.Sel.Name == "Rel" && analysis.IsNamed(tv.Type, relPath, "Relation") {
		return true
	}
	return false
}

// isAliasedPairSource reports whether the call returns exactly
// (*rel.Relation, bool) — the possibly-aliased contract shape of
// rel.Materialized and BaseResolver.Resolve.
func isAliasedPairSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok || tuple.Len() != 2 {
		return false
	}
	first, second := tuple.At(0).Type(), tuple.At(1).Type()
	basic, ok := second.Underlying().(*types.Basic)
	return analysis.IsNamed(first, relPath, "Relation") && ok && basic.Kind() == types.Bool
}
