// Package a reproduces the pooled-batch bug classes: the
// skip-empty-batch loop that overwrites a held batch, the early
// return that leaks one, and the double release that recycles live
// storage. The canonical drain/guard/handoff/view patterns must stay
// silent.
package a

import "radiv/internal/rel"

func sink(*rel.Batch) {}

// LeakEarlyReturn is the historical bug shape: a pooled batch leaked
// on the early-return path.
func LeakEarlyReturn(cond bool) {
	b := rel.NewBatch(2) // want `not released on the return path`
	if cond {
		return
	}
	b.Release()
}

// LeakSkipEmpty is the skip-empty-batch loop that pulls the next
// batch while the previous (empty but pooled) one is still held.
func LeakSkipEmpty(c rel.BatchCursor) (*rel.Batch, bool) {
	b, ok := c.NextBatch()
	for ok && b.Len() == 0 {
		b, ok = c.NextBatch() // want `overwritten while still held`
	}
	return b, ok
}

// DoubleRelease recycles the same column storage twice.
func DoubleRelease() {
	b := rel.NewBatch(1)
	b.Release()
	b.Release() // want `released twice`
}

// DeferDouble releases a batch that already has a pending deferred
// Release.
func DeferDouble() {
	b := rel.NewBatch(1)
	defer b.Release()
	b.Release() // want `already has a deferred Release`
}

// DrainOK is the canonical cursor drain: release every pooled batch
// before pulling the next.
func DrainOK(c rel.BatchCursor) int {
	n := 0
	for b, ok := c.NextBatch(); ok; b, ok = c.NextBatch() {
		n += b.Len()
		b.Release()
	}
	return n
}

// GuardOK returns early on the ok-false path, which carries a nil
// batch and owes nothing.
func GuardOK(c rel.BatchCursor) int {
	b, ok := c.NextBatch()
	if !ok {
		return 0
	}
	n := b.Len()
	b.Release()
	return n
}

// DeferOK releases through defer.
func DeferOK(c rel.BatchCursor) int {
	b, ok := c.NextBatch()
	if !ok {
		return 0
	}
	defer b.Release()
	return b.Len()
}

// ViewOK drains a BatchScan cursor: view batches alias relation
// storage and their Release is a no-op, so nothing is owed.
func ViewOK(r *rel.Relation) int {
	n := 0
	cur := r.BatchScan()
	for b, ok := cur.NextBatch(); ok; b, ok = cur.NextBatch() {
		n += b.Len()
	}
	return n
}

// HandoffOK transfers ownership downstream through a channel.
func HandoffOK(out chan<- *rel.Batch) {
	b := rel.NewBatch(3)
	out <- b
}

// ReturnOK transfers ownership to the caller.
func ReturnOK() *rel.Batch {
	b := rel.NewBatch(3)
	return b
}

// SinkOK transfers ownership to a callee.
func SinkOK() {
	b := rel.NewBatch(1)
	sink(b)
}

// PanicOK owes nothing on the panic path: pooled arrays are
// GC-recoverable and a panic aborts the query.
func PanicOK(arity int) *rel.Batch {
	b := rel.NewBatchSized(arity, 8)
	if arity == 0 {
		panic("a: zero arity")
	}
	return b
}
