// The abort-path bug classes of the governed executor: exec.Throw and
// the Governor checkpoints Check/CheckResident unwind during normal
// operation (cancellation, budget trips), running only cleanups
// registered with the governor — so a pooled batch definitely held at
// such a call site leaks live pool count on every abort. The accepted
// shapes — checkpoint before the pull, deferred release, handoff to a
// registered holder — must stay silent.
package a

import (
	"radiv/internal/exec"
	"radiv/internal/rel"
)

// HeldAcrossCheck holds a pooled batch over a governor checkpoint:
// an abort here unwinds past the Release below.
func HeldAcrossCheck(g *exec.Governor, c rel.BatchCursor) int {
	b, ok := c.NextBatch() // want `held across a governor checkpoint`
	if !ok {
		return 0
	}
	g.Check()
	n := b.Len()
	b.Release()
	return n
}

// HeldAcrossCheckResident: same bug through the resident-budget
// checkpoint.
func HeldAcrossCheckResident(g *exec.Governor, cur int) {
	b := rel.NewBatch(2) // want `held across a governor checkpoint`
	g.CheckResident(cur)
	b.Release()
}

// HeldAcrossThrow: the throw unwinds unconditionally; the held batch
// can never reach its Release on that path.
func HeldAcrossThrow(g *exec.Governor, err error, cond bool) {
	b := rel.NewBatch(1) // want `held across a governor checkpoint`
	if cond {
		exec.Throw(g, err)
	}
	b.Release()
}

// CheckBeforePullOK is the pull-boundary idiom the engine's guard
// cursors follow: the checkpoint fires while the frame holds nothing,
// then the batch is pulled, consumed and released.
func CheckBeforePullOK(g *exec.Governor, c rel.BatchCursor) int {
	n := 0
	for {
		g.Check()
		b, ok := c.NextBatch()
		if !ok {
			return n
		}
		n += b.Len()
		b.Release()
	}
}

// DeferAcrossCheckOK: defers run during the abort unwind, so a
// deferred Release discharges the obligation across checkpoints.
func DeferAcrossCheckOK(g *exec.Governor, c rel.BatchCursor) int {
	b, ok := c.NextBatch()
	if !ok {
		return 0
	}
	defer b.Release()
	g.CheckResident(b.Len())
	return b.Len()
}

// ThrowAfterReleaseOK: nothing is held when the throw unwinds.
func ThrowAfterReleaseOK(g *exec.Governor, err error) {
	b := rel.NewBatch(1)
	b.Release()
	exec.Throw(g, err)
}

// WatchedHandoffOK: handing the batch to a registered holder (or any
// callee) transfers ownership before the checkpoint.
func WatchedHandoffOK(g *exec.Governor) {
	b := rel.NewBatch(1)
	sink(b)
	g.Check()
}
