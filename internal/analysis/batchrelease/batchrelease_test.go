package batchrelease_test

import (
	"testing"

	"radiv/internal/analysis/analysistest"
	"radiv/internal/analysis/batchrelease"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), batchrelease.Analyzer, "a")
}
