// Package batchrelease enforces the pooled-batch ownership contract
// of the columnar layer (internal/rel/batch.go): a batch obtained
// from rel.NewBatch/NewBatchSized or pulled from a BatchCursor is
// owned by the acquirer, who must either call Release exactly once on
// every path or hand the batch off (send it downstream, store it,
// return it) — and must never Release twice, because a double-release
// puts the same column arrays into the sync.Pool twice and two future
// acquirers end up writing over each other.
//
// The check is an intraprocedural abstract walk of each function
// body. Per tracked batch variable it carries one of five states —
// untracked, held, released, deferred, escaped — through statements,
// cloning at branches and merging after them:
//
//   - x.Release() moves held→released; a second Release (or one after
//     defer x.Release()) is a double-release finding;
//   - passing the batch to any call argument, channel send, return
//     value, closure, store into a field/slice/map, or alias
//     transfers ownership: the variable becomes escaped and is no
//     longer reported (handing off is the documented pipeline
//     pattern — correctness is then the consumer's obligation);
//     reading through the batch (b.Len(), b.Col(i)) is not a
//     handoff;
//   - a return or function end reached while a batch is definitely
//     held is a leak finding; so is overwriting a held variable (the
//     skip-empty-batch loop that drops a pooled batch on the floor
//     each iteration);
//   - the comma-ok of `b, ok := cur.NextBatch()` is understood:
//     ok-false paths carry a nil batch and owe nothing;
//   - branches that disagree about a variable's state merge to
//     escaped: the analyzer only reports what is certain on a lexical
//     path, never what is merely possible.
//
// View batches are exempt by provenance, exactly as the contract
// exempts them: a cursor obtained from BatchScan/BatchScanSized
// yields views whose Release is a no-op (aliased storage never
// reaches the pool), so batches pulled from it are not tracked.
// Explicit panic paths owe no release: package-prefixed panics signal
// programming errors, and the boundary turns them into a dead query
// whose pooled arrays are GC-recoverable.
//
// Governed abort paths are different, and checked (the PR 10 abort
// contract): exec.Throw and the Governor checkpoints Check and
// CheckResident unwind in *normal operation* — on cancellation or a
// budget trip — and the boundary recovery releases only batches
// registered with the governor. A batch that is definitely held at
// such a checkpoint call therefore leaks live pool count on every
// abort; the pull-boundary idiom (check first, then pull) or a
// deferred Release (defers run during the unwind) are the accepted
// shapes, and an escape (handoff or Governor.Watch registration,
// which passes the holder to a call) silences the check as usual.
package batchrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"radiv/internal/analysis"
)

// Analyzer is the batchrelease check.
var Analyzer = &analysis.Analyzer{
	Name: "batchrelease",
	Doc:  "pooled rel.Batch values must be Released exactly once on every path, or handed off",
	Run:  run,
}

const (
	relPath  = "radiv/internal/rel"
	execPath = "radiv/internal/exec"
)

type state int

const (
	none state = iota // untracked, nil, or consumed
	held
	released
	deferred
	escaped
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Every function body — declarations and literals — is
			// analyzed independently; the walker treats a nested literal
			// as an escape boundary for the enclosing body's batches.
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				analyzeBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checker carries the per-body facts that survive branching: which
// cursors yield view batches, which bool guards which batch, and
// where each batch was acquired.
type checker struct {
	pass        *analysis.Pass
	viewCursors map[types.Object]bool
	okPairs     map[types.Object]types.Object
	acqPos      map[types.Object]token.Pos
}

type stateMap map[types.Object]state

func (m stateMap) clone() stateMap {
	c := make(stateMap, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func analyzeBody(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{
		pass:        pass,
		viewCursors: make(map[types.Object]bool),
		okPairs:     make(map[types.Object]types.Object),
		acqPos:      make(map[types.Object]token.Pos),
	}
	st := make(stateMap)
	if term := c.walkStmts(body.List, st); !term {
		c.reportHeld(st, "is still held when the function returns; release it or hand it off")
	}
}

func (c *checker) reportHeld(st stateMap, why string) {
	for obj, s := range st {
		if s == held {
			c.pass.Reportf(c.acqPos[obj], "pooled batch %s acquired here %s", obj.Name(), why)
			st[obj] = escaped // one report per acquisition
		}
	}
}

// walkStmts walks a statement list, returning whether control
// definitely cannot fall out of its end.
func (c *checker) walkStmts(stmts []ast.Stmt, st stateMap) bool {
	for _, s := range stmts {
		if c.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, st stateMap) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s.Lhs, s.Rhs, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					c.assign(lhs, vs.Values, st)
				}
			}
		}
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			c.escapeIn(s.X, st)
			return false
		}
		if obj := c.releaseTarget(call); obj != nil {
			switch st[obj] {
			case held:
				st[obj] = released
			case released:
				c.pass.Reportf(call.Pos(), "pooled batch %s released twice: a double-release recycles live column storage", obj.Name())
				st[obj] = escaped
			case deferred:
				c.pass.Reportf(call.Pos(), "pooled batch %s already has a deferred Release; this call double-releases it", obj.Name())
				st[obj] = escaped
			}
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				return true // panic paths owe no release (pool entries are GC-recoverable)
			}
		}
		if c.isGovCheck(call) {
			// Governor checkpoints unwind on abort with only registered
			// cleanups running: a batch held here leaks on every abort.
			c.reportHeld(st, "is held across a governor checkpoint that can unwind on abort; check before pulling, defer the release, or register the holder with Governor.Watch")
			return false
		}
		c.escapeIn(call, st)
	case *ast.SendStmt:
		c.escapeIn(s.Value, st)
		c.escapeIn(s.Chan, st)
	case *ast.DeferStmt:
		if obj := c.releaseTarget(s.Call); obj != nil {
			switch st[obj] {
			case held:
				st[obj] = deferred
			case released, deferred:
				c.pass.Reportf(s.Call.Pos(), "pooled batch %s released twice: a double-release recycles live column storage", obj.Name())
				st[obj] = escaped
			}
			return false
		}
		c.escapeIn(s.Call, st)
	case *ast.GoStmt:
		c.escapeIn(s.Call, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.escapeIn(r, st)
		}
		c.reportHeld(st, "is not released on the return path below; release it or hand it off")
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the lexical path; held batches on
		// such edges are out of this walker's scope.
		return true
	case *ast.IfStmt:
		return c.walkIf(s, st)
	case *ast.ForStmt:
		c.walkFor(s, st)
	case *ast.RangeStmt:
		c.walkRange(s, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Conservative: anything a multi-way branch touches escapes,
		// receivers included — Release calls inside cases are not
		// tracked, so their targets must stop being reported.
		c.escapeAll(s, st)
	case *ast.BlockStmt:
		return c.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)
	}
	return false
}

// walkIf walks both branches from clones of the incoming state,
// applies the comma-ok/nil-check guard, and merges.
func (c *checker) walkIf(s *ast.IfStmt, st stateMap) bool {
	if s.Init != nil {
		c.walkStmt(s.Init, st)
	}
	thenSt, elseSt := st.clone(), st.clone()
	if obj, thenHeld, ok := c.condGuard(s.Cond); ok {
		if !thenHeld {
			thenSt[obj] = none // guard proves the batch is nil here
		} else {
			elseSt[obj] = none
		}
	}
	thenTerm := c.walkStmts(s.Body.List, thenSt)
	elseTerm := false
	if s.Else != nil {
		elseTerm = c.walkStmt(s.Else, elseSt)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		merge(st, elseSt, elseSt)
	case elseTerm:
		merge(st, thenSt, thenSt)
	default:
		merge(st, thenSt, elseSt)
	}
	return false
}

// merge reconciles two branch outcomes into st: agreement is kept,
// disagreement escapes (the analyzer reports only certainties).
func merge(st, a, b stateMap) {
	for obj := range st {
		delete(st, obj)
	}
	for obj, sa := range a {
		if sb, ok := b[obj]; ok && sa == sb {
			st[obj] = sa
		} else if sa != none || (ok && sb != none) {
			st[obj] = escaped
		}
	}
	for obj, sb := range b {
		if _, ok := a[obj]; !ok && sb != none {
			st[obj] = escaped
		}
	}
}

// walkFor handles the canonical cursor loop
//
//	for b, ok := cur.NextBatch(); ok; b, ok = cur.NextBatch() { ... }
//
// as well as plain loops: the body runs on a clone, the post
// statement's overwrite check catches batches still held at the back
// edge, and a comma-ok condition proves the batch nil after exit.
func (c *checker) walkFor(s *ast.ForStmt, st stateMap) {
	if s.Init != nil {
		c.walkStmt(s.Init, st)
	}
	var guarded types.Object
	if obj, thenHeld, ok := c.condGuard(s.Cond); ok && thenHeld {
		guarded = obj
	}
	bodySt := st.clone()
	preBody := bodySt.clone()
	if !c.walkStmts(s.Body.List, bodySt) {
		if s.Post != nil {
			c.walkStmt(s.Post, bodySt) // overwrite-while-held reports here
		}
		// A batch acquired inside the body and still held at the back
		// edge leaks one pooled batch per iteration.
		for obj, v := range bodySt {
			if v == held && preBody[obj] != held {
				c.pass.Reportf(c.acqPos[obj], "pooled batch %s acquired here is still held at the end of the loop body; release it before the next iteration", obj.Name())
				bodySt[obj] = escaped
			}
		}
	}
	merge(st, preBody, bodySt)
	if guarded != nil {
		st[guarded] = none // loop exited with ok == false: batch is nil
	}
}

func (c *checker) walkRange(s *ast.RangeStmt, st stateMap) {
	c.escapeIn(s.X, st)
	for _, kv := range []ast.Expr{s.Key, s.Value} {
		if kv != nil {
			c.escapeIn(kv, st)
		}
	}
	bodySt := st.clone()
	preBody := bodySt.clone()
	if !c.walkStmts(s.Body.List, bodySt) {
		for obj, v := range bodySt {
			if v == held && preBody[obj] != held {
				c.pass.Reportf(c.acqPos[obj], "pooled batch %s acquired here is still held at the end of the loop body; release it before the next iteration", obj.Name())
				bodySt[obj] = escaped
			}
		}
	}
	merge(st, preBody, bodySt)
}

// assign is the acquisition, aliasing and overwrite logic.
func (c *checker) assign(lhs, rhs []ast.Expr, st stateMap) {
	// b, ok := cur.NextBatch()
	if len(rhs) == 1 && len(lhs) == 2 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok && c.isNextBatch(call) {
			c.escapeIn(call, st)
			bobj, okobj := c.lhsObj(lhs[0]), c.lhsObj(lhs[1])
			if bobj == nil {
				return
			}
			c.overwriteCheck(bobj, lhs[0].Pos(), st)
			if c.isViewCursor(call) {
				st[bobj] = none // view batches: Release is a no-op by contract
				return
			}
			st[bobj] = held
			c.acqPos[bobj] = lhs[0].Pos()
			if okobj != nil {
				c.okPairs[okobj] = bobj
			}
			return
		}
	}
	if len(rhs) == 1 && len(lhs) != 1 {
		c.escapeIn(rhs[0], st)
		for _, l := range lhs {
			if obj := c.lhsObj(l); obj != nil {
				c.overwriteCheck(obj, l.Pos(), st)
				st[obj] = none
			}
		}
		return
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		r := ast.Unparen(rhs[i])
		lobj := c.lhsObj(l)
		if lobj == nil {
			// Stores through fields, slices and maps hand the value
			// off; the target chain itself is only read.
			c.escapeIn(r, st)
			continue
		}
		c.overwriteCheck(lobj, l.Pos(), st)
		if call, ok := r.(*ast.CallExpr); ok {
			switch {
			case analysis.CalleePkgFunc(c.pass, call, relPath, "NewBatch") || analysis.CalleePkgFunc(c.pass, call, relPath, "NewBatchSized"):
				c.escapeIn(call, st)
				st[lobj] = held
				c.acqPos[lobj] = l.Pos()
				continue
			case isScanCall(call):
				c.escapeIn(call, st)
				c.viewCursors[lobj] = true
				st[lobj] = none
				continue
			}
		}
		if id, ok := r.(*ast.Ident); ok {
			if robj := c.pass.TypesInfo.Uses[id]; robj != nil && st[robj] != none {
				st[robj] = escaped // aliased: ownership is ambiguous from here on
			}
		} else {
			c.escapeIn(r, st)
		}
		st[lobj] = none
	}
}

// overwriteCheck flags assignment over a definitely-held batch — the
// leak where a loop pulls the next batch without releasing the
// previous one.
func (c *checker) overwriteCheck(obj types.Object, pos token.Pos, st stateMap) {
	if st[obj] == held {
		c.pass.Reportf(pos, "pooled batch %s overwritten while still held; release it before reassigning", obj.Name())
		st[obj] = escaped
	}
}

// condGuard decodes the comma-ok and nil-check idioms: `ok`, `!ok`,
// `b == nil`, `b != nil`. thenHeld reports whether the guarded batch
// is live on the true branch.
func (c *checker) condGuard(cond ast.Expr) (obj types.Object, thenHeld, ok bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.Ident:
		if b, found := c.okPairs[c.pass.TypesInfo.Uses[e]]; found {
			return b, true, true
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			if id, isIdent := ast.Unparen(e.X).(*ast.Ident); isIdent {
				if b, found := c.okPairs[c.pass.TypesInfo.Uses[id]]; found {
					return b, false, true
				}
			}
		}
	case *ast.BinaryExpr:
		if e.Op != token.EQL && e.Op != token.NEQ {
			return nil, false, false
		}
		x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
		if isNil(y) {
			if id, isIdent := x.(*ast.Ident); isIdent {
				if o := c.pass.TypesInfo.Uses[id]; o != nil && analysis.IsNamed(o.Type(), relPath, "Batch") {
					return o, e.Op == token.NEQ, true
				}
			}
		}
	}
	return nil, false, false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// releaseTarget returns the tracked identifier of a b.Release() call,
// or nil.
func (c *checker) releaseTarget(call *ast.CallExpr) types.Object {
	sel, recv := analysis.MethodCall(c.pass, call)
	if sel == nil || sel.Sel.Name != "Release" || !analysis.IsNamed(recv, relPath, "Batch") {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return c.pass.TypesInfo.Uses[id]
}

// isGovCheck matches the abort checkpoints: the package function
// exec.Throw and the methods Check/CheckResident on *exec.Governor.
// These are the only calls that unwind during normal (governed)
// operation, so they are where the held-across-abort rule applies.
func (c *checker) isGovCheck(call *ast.CallExpr) bool {
	if analysis.CalleePkgFunc(c.pass, call, execPath, "Throw") {
		return true
	}
	sel, recv := analysis.MethodCall(c.pass, call)
	if sel == nil || recv == nil {
		return false
	}
	name := sel.Sel.Name
	return (name == "Check" || name == "CheckResident") && analysis.IsNamed(recv, execPath, "Governor")
}

// isNextBatch matches calls returning (*rel.Batch, bool) through a
// method named NextBatch.
func (c *checker) isNextBatch(call *ast.CallExpr) bool {
	sel, _ := analysis.MethodCall(c.pass, call)
	if sel == nil || sel.Sel.Name != "NextBatch" {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	tuple, ok := tv.Type.(*types.Tuple)
	return ok && tuple.Len() == 2 && analysis.IsNamed(tuple.At(0).Type(), relPath, "Batch")
}

// isViewCursor reports whether the NextBatch receiver traces to a
// BatchScan/BatchScanSized cursor — view-batch provenance.
func (c *checker) isViewCursor(call *ast.CallExpr) bool {
	sel, _ := analysis.MethodCall(c.pass, call)
	if sel == nil {
		return false
	}
	if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok && isScanCall(inner) {
		return true // r.BatchScan().NextBatch()
	}
	root := analysis.RootIdent(sel.X)
	return root != nil && c.viewCursors[c.pass.TypesInfo.Uses[root]]
}

// isScanCall matches the view-batch sources BatchScan and
// BatchScanSized.
func isScanCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && (sel.Sel.Name == "BatchScan" || sel.Sel.Name == "BatchScanSized")
}

// lhsObj resolves an assignable identifier, skipping blanks and
// non-identifier targets.
func (c *checker) lhsObj(l ast.Expr) types.Object {
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// escapeIn escapes every tracked identifier handed off inside the
// node: call arguments, aliases, closure captures. Reading through a
// method receiver (b.Len(), b.Col(i)) is not a handoff and keeps the
// batch tracked; a closure body escapes everything it mentions, since
// its execution is not on this lexical path.
func (c *checker) escapeIn(n ast.Node, st stateMap) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			for _, a := range x.Args {
				c.escapeIn(a, st)
			}
			switch fun := x.Fun.(type) {
			case *ast.SelectorExpr:
				// Method receiver: a read, not a transfer. Calls nested
				// in the receiver chain still get their args scanned.
				if inner, ok := ast.Unparen(fun.X).(*ast.CallExpr); ok {
					c.escapeIn(inner, st)
				}
			default:
				c.escapeIn(fun, st)
			}
			return false
		case *ast.FuncLit:
			c.escapeAll(x, st)
			return false
		case *ast.Ident:
			c.escapeObj(x, st)
		}
		return true
	})
}

// escapeAll escapes every tracked identifier in the node, receivers
// included — for regions the walker does not interpret.
func (c *checker) escapeAll(n ast.Node, st stateMap) {
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			c.escapeObj(id, st)
		}
		return true
	})
}

func (c *checker) escapeObj(id *ast.Ident, st stateMap) {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		if _, tracked := st[obj]; tracked {
			st[obj] = escaped
		}
	}
}
