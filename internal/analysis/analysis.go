// Package analysis is the static-analysis layer of the repository: a
// standard-library reimplementation of the core vocabulary of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic), plus
// the project-specific analyzers that turn the engine's documented
// contracts into machine-checked law. The x/tools module is not a
// dependency of this repository — the module is dependency-free by
// policy — so the familiar shapes are mirrored here with identical
// field names; migrating an analyzer onto the real go/analysis API is
// a mechanical import swap.
//
// The suite is driven by cmd/radivvet (a multichecker over ./...) and
// by per-analyzer analysistest fixtures under each analyzer's
// testdata directory. See doc.go in this package for the three
// contracts the analyzers enforce and run.go for the suppression
// directive grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (also the key of the
// //radivvet:ignore directive), documentation, and the per-package
// entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives. It
	// must be a valid identifier.
	Name string
	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then details.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report. The returned error aborts the whole run —
	// reserve it for internal failures, not findings.
	Run func(pass *Pass) error
}

// Pass is one (analyzer, package) unit of work: the package's syntax
// and type information plus the diagnostic sink.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's facts about Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
