package analysis

// The runner: applies a set of analyzers to loaded packages, collects
// findings, and honors suppression directives.
//
// A finding is suppressed by a comment of the form
//
//	//radivvet:ignore <analyzer>[,<analyzer>] <reason>
//
// on the flagged line or the line directly above it. The analyzer
// list may be "all". The reason is free text; directives without one
// are themselves reported, so every suppression in the tree carries
// its justification.

import (
	"go/token"
	"sort"
	"strings"

	"radiv/internal/analysis/loadpkg"
)

// Finding is one resolved diagnostic: analyzer, position, message.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return f.Position.String() + ": " + f.Message + " [" + f.Analyzer + "]"
}

// ignoreDirective is one parsed //radivvet:ignore comment.
type ignoreDirective struct {
	analyzers []string // names, or ["all"]
	hasReason bool
}

func (d ignoreDirective) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == "all" || a == analyzer {
			return true
		}
	}
	return false
}

const directivePrefix = "//radivvet:ignore"

// Run applies every analyzer to every package and returns the
// surviving findings sorted by position. Malformed or reason-less
// directives are reported as findings of the pseudo-analyzer
// "radivvet".
func Run(pkgs []*loadpkg.Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		directives := make(map[string]map[int]ignoreDirective) // file -> line -> directive
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(c.Text, directivePrefix))
					if len(fields) == 0 {
						findings = append(findings, Finding{
							Analyzer: "radivvet",
							Position: pos,
							Message:  "malformed directive: " + directivePrefix + " needs an analyzer name and a reason",
						})
						continue
					}
					d := ignoreDirective{analyzers: strings.Split(fields[0], ","), hasReason: len(fields) > 1}
					if !d.hasReason {
						findings = append(findings, Finding{
							Analyzer: "radivvet",
							Position: pos,
							Message:  "suppression without a reason: state why the contract holds here",
						})
					}
					if directives[pos.Filename] == nil {
						directives[pos.Filename] = make(map[int]ignoreDirective)
					}
					directives[pos.Filename][pos.Line] = d
				}
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if byLine := directives[pos.Filename]; byLine != nil {
					if d, ok := byLine[pos.Line]; ok && d.covers(name) {
						return
					}
					if d, ok := byLine[pos.Line-1]; ok && d.covers(name) {
						return
					}
				}
				findings = append(findings, Finding{Analyzer: name, Position: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
