package analysis

// Shared type- and syntax-inspection helpers for the analyzers: named
// type matching across pointers, receiver resolution of method calls,
// leftmost-constant-string extraction for the panic-style check, and
// root-identifier resolution of receiver chains for the capture checks.

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Deref unwraps one level of pointer; other types pass through.
func Deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// IsNamed reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// NamedInterface resolves the interface type pkgPath.name through the
// pass's import graph, or nil when the package is not imported (in
// which case the contract the interface anchors cannot be violated by
// this package either).
func NamedInterface(pass *Pass, pkgPath, name string) *types.Interface {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() != pkgPath {
			continue
		}
		obj := imp.Scope().Lookup(name)
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

// Implements reports whether t or *t satisfies iface.
func Implements(t types.Type, iface *types.Interface) bool {
	if iface == nil || t == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// MethodCall matches a call expression of the form recv.name(...) and
// returns the selector and the static type of recv. The second result
// is nil for plain function calls and conversions.
func MethodCall(pass *Pass, call *ast.CallExpr) (*ast.SelectorExpr, types.Type) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	// A selector can also be a qualified identifier (pkg.Func) or a
	// field access; only method selections have a receiver type.
	if selInfo, ok := pass.TypesInfo.Selections[sel]; ok {
		return sel, selInfo.Recv()
	}
	return sel, nil
}

// CalleePkgFunc reports whether call is a direct call of the
// package-level function pkgPath.name.
func CalleePkgFunc(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// ConstHead returns the leftmost compile-time-constant string of an
// expression: the literal itself, the left operand of a + chain, or
// the format argument of a fmt.Sprintf call. ok is false when no
// constant head can be determined (a dynamic value re-panicked, say).
func ConstHead(pass *Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		return ConstHead(pass, e.X)
	case *ast.CallExpr:
		if CalleePkgFunc(pass, e, "fmt", "Sprintf") && len(e.Args) > 0 {
			return ConstHead(pass, e.Args[0])
		}
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

// RootIdent resolves the leftmost identifier of a receiver chain:
// x in x.a, x.a[i].b, x.m().f, and plain x. It is nil for chains not
// rooted in an identifier (composite literals, call results of plain
// functions).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			// A method-chain link: the root of f in x.m().f is x.
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			e = sel.X
		default:
			return nil
		}
	}
}

// DeclaredWithin reports whether obj's declaration lies inside the
// source range of node — used to distinguish a worker callback's own
// locals and parameters from variables captured from the enclosing
// scope.
func DeclaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}
