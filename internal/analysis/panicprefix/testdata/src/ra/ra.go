// Package ra is a panicprefix fixture shaped like the algebra
// packages' Validate paths: the analyzer keys the required prefix off
// the package name.
package ra

import "fmt"

// Validate mirrors the eval-entry validation panics of the real ra
// package.
func Validate(ok bool, arity int, err error) {
	if !ok {
		panic("ra: invalid expression: " + err.Error()) // prefixed concatenation: fine
	}
	if arity < 0 {
		panic(fmt.Sprintf("ra: negative arity %d", arity)) // prefixed Sprintf: fine
	}
	if arity > 64 {
		panic(fmt.Sprintf("arity %d out of range", arity)) // want `must carry the "ra: " package prefix`
	}
}

// CheckOn panics on behalf of a caller-supplied package, the
// rel.CheckView shape: a "%s: " head is the parameterized prefix.
func CheckOn(pkg string, n int) {
	if n < 0 {
		panic(fmt.Sprintf("%s: negative count %d", pkg, n))
	}
}

// Bad wears another package's prefix, which is worse than none.
func Bad() {
	panic("sa: wrong layer") // want `must carry the "ra: " package prefix`
}

// Repanic re-raises a dynamic value; no constant head, so no finding.
func Repanic(v any) {
	panic(v)
}

// Relay wears the storage layer's prefix deliberately, and the
// suppression directive above the panic carries its why — so the
// analyzer stays silent here. (Without the directive this line would
// be a finding, like Bad above.)
func Relay() {
	//radivvet:ignore panicprefix relaying the storage layer's message verbatim
	panic("rel: relayed storage failure")
}
