package panicprefix_test

import (
	"testing"

	"radiv/internal/analysis/analysistest"
	"radiv/internal/analysis/panicprefix"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), panicprefix.Analyzer, "ra")
}
