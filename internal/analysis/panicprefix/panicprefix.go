// Package panicprefix enforces the repository's panic style: every
// panic raised by a library package under radiv/internal must carry
// the package's name as a "pkg: " message prefix, the convention the
// Validate paths of the three algebras established (`ra: invalid
// expression: ...`) and every other package follows. A prefixed panic
// tells the operator which layer's contract was violated without a
// stack read; an unprefixed one — or worse, one wearing another
// package's prefix — sends the reader into the wrong file.
//
// The check resolves the leftmost compile-time-constant fragment of
// the panic argument: a string literal, the head of a + concatenation
// chain, or the format argument of fmt.Sprintf. Arguments with no
// constant head (re-panicking a recovered value, say) are skipped. A
// head beginning with "%s: " is accepted too: that is the
// parameterized prefix of shared helpers like rel.CheckView, which
// panic on behalf of a caller-supplied package.
package panicprefix

import (
	"go/ast"
	"go/types"
	"strings"

	"radiv/internal/analysis"
)

// Analyzer is the panicprefix check.
var Analyzer = &analysis.Analyzer{
	Name: "panicprefix",
	Doc:  "enforce the \"pkg: \" message prefix on every panic in radiv/internal packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), "radiv/internal/") && !isFixture(pass) {
		return nil
	}
	want := pass.Pkg.Name() + ": "
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			head, ok := analysis.ConstHead(pass, call.Args[0])
			if !ok {
				return true // dynamic value: nothing to check lexically
			}
			if strings.HasPrefix(head, want) || strings.HasPrefix(head, "%s: ") {
				return true
			}
			pass.Reportf(call.Args[0].Pos(), "panic message %.40q must carry the %q package prefix", head, want)
			return true
		})
	}
	return nil
}

// isFixture keeps the analyzer exercisable from analysistest, whose
// fixture packages are loaded by directory rather than by a
// radiv/internal import path.
func isFixture(pass *analysis.Pass) bool {
	return strings.Contains(pass.Pkg.Path(), "testdata/src/")
}
