// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixture
// sources — a standard-library reimplementation of the x/tools
// package of the same name, for the same fixture layout and comment
// grammar:
//
//	testdata/src/<fixture>/*.go
//
// with expectations as trailing comments
//
//	d.View("R") // want `store-owned` "second diagnostic"
//
// Each quoted string is a regexp that must match one diagnostic
// reported on that line; diagnostics and expectations must match one
// to one, in both directions. Fixtures live under testdata, which go
// list patterns never descend into, so they are invisible to builds,
// tests and the radivvet driver itself — must-flag fixtures stay in
// the tree without turning CI red.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"radiv/internal/analysis"
	"radiv/internal/analysis/loadpkg"
)

// TestData returns the caller's testdata directory made absolute, the
// conventional root for fixtures.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package at testdata/src/<name>, applies the
// analyzer, and reports any mismatch between its diagnostics and the
// fixtures' want-comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	moduleDir := moduleRoot(t, testdata)
	for _, fixture := range fixtures {
		dir := filepath.Join(testdata, "src", fixture)
		loader := loadpkg.New(moduleDir)
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Errorf("%s: loading fixture: %v", fixture, err)
			continue
		}
		findings, err := analysis.Run([]*loadpkg.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: running %s: %v", fixture, a.Name, err)
			continue
		}
		wants := collectWants(t, pkg)
		for _, f := range findings {
			if !claim(wants, f) {
				t.Errorf("%s: unexpected diagnostic: %v", fixture, f)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matched %q", fixture, w.file, w.line, w.rx)
			}
		}
	}
}

// want is one expectation: a regexp bound to a source line.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// claim matches a finding against the first unclaimed expectation on
// its line.
func claim(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.Position.Filename && w.line == f.Position.Line && w.rx.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every `// want` comment of the fixture.
func collectWants(t *testing.T, pkg *loadpkg.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range parsePatterns(t, pos.String(), text) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// parsePatterns reads the sequence of Go-quoted strings after a want
// marker.
func parsePatterns(t *testing.T, pos, s string) []string {
	t.Helper()
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Errorf("%s: want comment is not a sequence of quoted regexps at %q", pos, s)
			return pats
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			t.Errorf("%s: unquoting %q: %v", pos, q, err)
			return pats
		}
		pats = append(pats, pat)
		s = s[len(q):]
	}
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(t *testing.T, dir string) string {
	t.Helper()
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatal(fmt.Sprintf("no go.mod above %s", dir))
		}
		d = parent
	}
}
