package quiescence_test

import (
	"testing"

	"radiv/internal/analysis/analysistest"
	"radiv/internal/analysis/quiescence"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), quiescence.Analyzer, "a", "b")
}
