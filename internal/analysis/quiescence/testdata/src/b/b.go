// Package b pins the snapshot half of the contract: state obtained
// from a published snapshot (rel.Snapshot, shard.Snapshot) is sealed —
// mutating it must be flagged — while reads of snapshot state,
// including concurrent reads from exchange workers, are the entire
// point of snapshots and must stay silent. Cloning sanitizes: a clone
// is the caller's to mutate.
package b

import (
	"radiv/internal/engine"
	"radiv/internal/rel"
	"radiv/internal/shard"
)

// MutateSnapshotRel is the direct violation shape: writing into a
// relation handed out by a published snapshot.
func MutateSnapshotRel(snap *rel.Snapshot, t rel.Tuple) {
	r := snap.Rel("R")
	r.Add(t)                              // want `Relation.Add mutating a published snapshot`
	r.Reserve(10)                         // want `Relation.Reserve mutating a published snapshot`
	snap.Rel("R").Add(t)                  // want `Relation.Add mutating a published snapshot`
	snap.Rel("R").Interner().Intern(t[0]) // want `Interner.Intern mutating a published snapshot`
}

// MutateShardSnapshot reaches sealed state through the sharded
// snapshot's partition anatomy.
func MutateShardSnapshot(snap *shard.Snapshot, t rel.Tuple) {
	local := snap.ShardRel(0, "R")
	local.Add(t) // want `Relation.Add mutating a published snapshot`
}

// MutateThroughIDMap interns into a snapshot dictionary one
// indirection later, through a translation cache targeting it.
func MutateThroughIDMap(snap *rel.Snapshot, b *rel.Batch) {
	dict := snap.Rel("R").Interner()
	xl := rel.NewIDMap(dict)
	xl.Intern(b.Dict(0), b.Col(0)[0]) // want `IDMap.Intern mutating a published snapshot`
}

// MutateMaterialized mutates the aliased relation rel.Materialized
// hands back for a snapshot store (aliased is always true there).
func MutateMaterialized(snap *rel.Snapshot, t rel.Tuple) {
	r, _ := rel.Materialized(snap, "R")
	r.Add(t) // want `Relation.Add mutating a published snapshot`
}

// MutateInWorker is the race the contract exists to prevent: a worker
// goroutine writing into captured snapshot state while other workers
// read it — both halves of the law flag it.
func MutateInWorker(ex engine.Executor, shards []engine.Cursor, snap *rel.Snapshot) {
	r := snap.Rel("R")
	ex.StreamSharded(shards, func(q int, sh engine.Cursor) {
		for t, ok := sh.Next(); ok; t, ok = sh.Next() {
			r.Add(t) // want `Relation.Add interning into a captured relation` `Relation.Add mutating a published snapshot`
		}
	})
}

// ReadSnapshot exercises the legal surface: scans, probes, dictionary
// lookups, frozen facades — all reads, all silent.
func ReadSnapshot(snap *rel.Snapshot, t rel.Tuple) int {
	n := 0
	r := snap.Rel("R")
	c := r.Scan()
	for tup, ok := c.Next(); ok; tup, ok = c.Next() {
		if r.Contains(tup) {
			n++
		}
	}
	if id, ok := snap.Dict("R").ID(t[0]); ok {
		n += int(id)
	}
	if _, ok := snap.Rel("R").Interner().ID(t[0]); ok {
		n++
	}
	return n + snap.Size()
}

// WorkerReadsSnapshotDict is the pattern the old routed-exchange read
// ban forbade and the snapshot contract legalizes: workers decode
// against a captured snapshot dictionary while the router is still
// routing. The dictionary is sealed, so the reads are safe — silent.
func WorkerReadsSnapshotDict(ex engine.Executor, in engine.BatchCursor, snap *rel.Snapshot, hits []int) {
	dict := snap.Rel("R").Interner()
	ex.StreamPartitionedBatches(in, func(b *rel.Batch, row int) int {
		return int(b.Col(0)[row]) % 2
	}, func(q int, shard engine.BatchCursor) {
		for b, ok := shard.NextBatch(); ok; b, ok = shard.NextBatch() {
			for row := 0; row < b.Len(); row++ {
				_ = dict.Value(b.Col(0)[row]) // sealed dictionary: reads are safe mid-exchange
				hits[q]++
			}
			b.Release()
		}
	})
}

// CloneSanitizes pins the sanitizer: a clone of snapshot state is
// caller-owned and freely mutable.
func CloneSanitizes(snap *rel.Snapshot, t rel.Tuple) *rel.Relation {
	r := snap.Rel("R").Clone()
	r.Add(t)
	return r
}
