// Package a reproduces the worker-interning hazard of PR 5's batched
// exchange: a worker mutating a dictionary shared with the router (or
// with sibling workers) races rel.Interner's maps. The legal patterns
// — interning on the route callback, worker-local dictionaries, and
// (since the snapshot epochs landed) reads of captured dictionaries on
// every path — must stay silent.
package a

import (
	"radiv/internal/engine"
	"radiv/internal/rel"
)

// InternInWorker is the historical bug shape: the exchange moves
// batches while the packing dictionary is still being written, and a
// worker interning into it races the router. Reading the captured
// dictionary is no longer flagged — under the snapshot contract the
// dictionaries a worker is handed are sealed, and the producer of a
// live packing dictionary is responsible for re-encoding before the
// exchange (division.DivideStream's pattern).
func InternInWorker(ex engine.Executor, in engine.Cursor, dict *rel.Interner, sink *rel.Relation, s rel.Store) {
	ex.StreamPartitioned(in, func(t rel.Tuple) int {
		return int(dict.Intern(t[0])) % 2 // route runs on the router goroutine: interning is safe here
	}, func(q int, shard engine.Cursor) {
		for t, ok := shard.Next(); ok; t, ok = shard.Next() {
			dict.Intern(t[0])    // want `Interner.Intern on a captured dictionary`
			sink.Add(t)          // want `Relation.Add interning into a captured relation`
			s.Add("out", t)      // want `Store.Add interning into a captured store`
			_, _ = dict.ID(t[0]) // reads of a captured dictionary are legal: sealed under the snapshot contract
		}
	})
}

// IDMapInWorker interns through a translation cache whose target
// dictionary is captured — the same race one indirection later.
func IDMapInWorker(ex engine.Executor, in engine.BatchCursor, xl *rel.IDMap) {
	ex.StreamPartitionedBatches(in, func(b *rel.Batch, row int) int {
		return int(b.Col(0)[row]) % 2
	}, func(q int, shard engine.BatchCursor) {
		for b, ok := shard.NextBatch(); ok; b, ok = shard.NextBatch() {
			xl.Intern(b.Dict(0), b.Col(0)[0]) // want `IDMap.Intern interning into a captured target dictionary`
			b.Release()
		}
	})
}

// WorkerLocal builds every dictionary inside the callback: private to
// the worker, outside the contract.
func WorkerLocal(ex engine.Executor, in engine.Cursor, results []*rel.Relation) {
	ex.StreamPartitioned(in, func(t rel.Tuple) int { return 0 }, func(q int, shard engine.Cursor) {
		local := rel.NewInterner()
		out := rel.NewRelation(1)
		for t, ok := shard.Next(); ok; t, ok = shard.Next() {
			local.Intern(t[0])
			out.Add(t)
		}
		results[q] = out
	})
}

// ShardedReads probes a captured dictionary on the pre-partitioned
// path: no router is interning, the dictionaries are quiescent, and
// read-only probing is the documented safe pattern.
func ShardedReads(ex engine.Executor, shards []engine.Cursor, dict *rel.Interner, hits []int) {
	ex.StreamSharded(shards, func(q int, shard engine.Cursor) {
		for t, ok := shard.Next(); ok; t, ok = shard.Next() {
			if _, ok := dict.ID(t[0]); ok {
				hits[q]++
			}
		}
	})
}

// ShardedIntern still may not mutate a captured dictionary even
// without a router: the sibling workers share it.
func ShardedIntern(ex engine.Executor, shards []engine.Cursor, dict *rel.Interner) {
	ex.StreamSharded(shards, func(q int, shard engine.Cursor) {
		for t, ok := shard.Next(); ok; t, ok = shard.Next() {
			dict.Intern(t[0]) // want `Interner.Intern on a captured dictionary`
		}
	})
}
