// Package quiescence enforces the snapshot contract of the storage
// and exchange layers (rel/snapshot.go, engine/batchstream.go). Since
// the epoch refactor the law has two halves:
//
//  1. Published snapshots are immutable. A *rel.Snapshot or
//     *shard.Snapshot hands out sealed state — relations, their
//     dictionaries, their translation targets — and nothing obtained
//     from one may ever be mutated: no Relation.Add/AddBatch/Reserve,
//     no Interner.Intern, no IDMap interning into a snapshot
//     dictionary. Interning goes through the epoch writer, before the
//     snapshot is published.
//
//  2. Exchange workers do not intern into shared dictionaries. Worker
//     callbacks of the engine.Executor Stream* family run concurrently
//     with each other (and, in the routed exchanges, with the router),
//     and a rel.Interner is not safe for concurrent mutation — so no
//     worker may intern into any dictionary captured from the
//     enclosing scope. Reading captured dictionaries is legal on every
//     path: under the snapshot contract the dictionaries a worker sees
//     are sealed (the historical routed-exchange read ban is gone);
//     what workers must not do is mutate.
//
// Half 1 is a lexical taint walk per function body: snapshot method
// results (and values derived from them through method chains,
// assignments, rel.Materialized on a snapshot, rel.NewIDMap over a
// snapshot dictionary) are tainted, mutating method calls on tainted
// receivers are flagged, and Clone sanitizes — a cloned relation is
// the caller's to mutate. Half 2 inspects every function-literal
// worker callback passed to a Stream* method and flags interning calls
// — Interner.Intern, IDMap.Intern, Relation.Add/AddBatch, Store.Add,
// setjoin's Dict.Key — whose receiver is captured from the enclosing
// scope. A receiver declared inside the callback (a worker-local
// relation or interner) is private to the worker and exempt. The route
// callback of a routed exchange is exempt by design: it runs on the
// router goroutine, the one place interning during an exchange is
// documented safe (see engine.StreamPartitionedBatches).
package quiescence

import (
	"go/ast"
	"go/types"

	"radiv/internal/analysis"
)

// Analyzer is the quiescence check.
var Analyzer = &analysis.Analyzer{
	Name: "quiescence",
	Doc:  "forbid mutation of published snapshots and interning on captured dictionaries inside engine.Stream* worker callbacks",
	Run:  run,
}

const (
	relPath     = "radiv/internal/rel"
	enginePath  = "radiv/internal/engine"
	setjoinPath = "radiv/internal/setjoin"
	shardPath   = "radiv/internal/shard"
)

// exchangeMethods is the engine.Executor exchange family whose last
// argument is a worker callback.
var exchangeMethods = map[string]bool{
	"StreamPartitioned":        true,
	"StreamPartitionedBatches": true,
	"StreamSharded":            true,
	"StreamShardedBatches":     true,
}

func run(pass *analysis.Pass) error {
	storeIface := analysis.NamedInterface(pass, relPath, "Store")
	for _, f := range pass.Files {
		// Half 1: snapshot immutability, one taint walk per function.
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSnapshotMutation(pass, fd.Body)
			}
		}
		// Half 2: worker interning bans.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, recv := analysis.MethodCall(pass, call)
			if sel == nil || recv == nil {
				return true
			}
			if !exchangeMethods[sel.Sel.Name] || !analysis.IsNamed(recv, enginePath, "Executor") {
				return true
			}
			work, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true // a named worker function: outside the lexical contract
			}
			checkWorker(pass, work, storeIface)
			return true
		})
	}
	return nil
}

// checkWorker flags interning on captured receivers anywhere lexically
// inside the worker callback.
func checkWorker(pass *analysis.Pass, work *ast.FuncLit, storeIface *types.Interface) {
	ast.Inspect(work.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, recv := analysis.MethodCall(pass, call)
		if sel == nil || recv == nil {
			return true
		}
		kind := classify(sel.Sel.Name, recv, storeIface)
		if kind == "" {
			return true
		}
		if root := analysis.RootIdent(sel.X); root != nil {
			obj := pass.TypesInfo.Uses[root]
			if obj == nil {
				obj = pass.TypesInfo.Defs[root]
			}
			if analysis.DeclaredWithin(obj, work) {
				return true // worker-local dictionary: private to this goroutine
			}
		}
		pass.Reportf(call.Pos(), "%s inside an exchange worker: workers share it with other goroutines; intern through the epoch writer before the exchange (snapshot contract, see engine.StreamPartitionedBatches)", kind)
		return true
	})
}

// classify returns a description of the hazardous interning call, or
// "" for calls outside the contract.
func classify(name string, recv types.Type, storeIface *types.Interface) string {
	switch name {
	case "Intern":
		if analysis.IsNamed(recv, relPath, "Interner") {
			return "Interner.Intern on a captured dictionary"
		}
		if analysis.IsNamed(recv, relPath, "IDMap") {
			return "IDMap.Intern interning into a captured target dictionary"
		}
	case "Add":
		if analysis.IsNamed(recv, relPath, "Relation") {
			return "Relation.Add interning into a captured relation's dictionary"
		}
		if analysis.Implements(recv, storeIface) {
			return "Store.Add interning into a captured store"
		}
	case "AddBatch":
		if analysis.IsNamed(recv, relPath, "Relation") {
			return "Relation.AddBatch interning into a captured relation's dictionary"
		}
	case "Key":
		if analysis.IsNamed(recv, setjoinPath, "Dict") {
			return "Dict.Key interning into a captured canonical-key dictionary"
		}
	}
	return ""
}

// isSnapshotType reports whether t is one of the published snapshot
// types: rel.Snapshot or shard.Snapshot (possibly behind a pointer).
func isSnapshotType(t types.Type) bool {
	return analysis.IsNamed(t, relPath, "Snapshot") || analysis.IsNamed(t, shardPath, "Snapshot")
}

// snapSink returns a description of a mutating call on a
// snapshot-derived receiver, or "" for reads (which are the point of
// snapshots and always legal).
func snapSink(name string, recv types.Type) string {
	switch name {
	case "Add", "AddBatch", "Reserve":
		if analysis.IsNamed(recv, relPath, "Relation") {
			return "Relation." + name
		}
	case "Intern":
		if analysis.IsNamed(recv, relPath, "Interner") {
			return "Interner.Intern"
		}
		if analysis.IsNamed(recv, relPath, "IDMap") {
			return "IDMap.Intern"
		}
	case "DropBatchCache":
		if analysis.IsNamed(recv, relPath, "Relation") {
			return "Relation.DropBatchCache"
		}
	}
	return ""
}

// checkSnapshotMutation runs the snapshot-immutability taint walk over
// one function body in source order. Taint sources are snapshot method
// results; taint propagates through assignments, method chains (Clone
// excepted — a clone is caller-owned), rel.Materialized on a
// statically snapshot-typed store, rel.NewIDMap over a tainted
// dictionary, and IDColumns' dictionary result. Mutating method calls
// on tainted receivers are flagged. Function literals are walked too:
// a worker closure mutating captured snapshot state is exactly the
// race the contract exists to prevent.
func checkSnapshotMutation(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)

	var exprTaint func(e ast.Expr) bool
	exprTaint = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			return obj != nil && tainted[obj]
		case *ast.TypeAssertExpr:
			return exprTaint(e.X)
		case *ast.CallExpr:
			if sel, recv := analysis.MethodCall(pass, e); sel != nil && recv != nil {
				if isSnapshotType(recv) {
					return true // a snapshot method result is sealed state
				}
				if sel.Sel.Name == "Clone" {
					return false // a clone is the caller's to mutate
				}
				return exprTaint(sel.X) // method chain off tainted state
			}
			if analysis.CalleePkgFunc(pass, e, relPath, "Materialized") && len(e.Args) > 0 {
				return materializedFromSnapshot(pass, e)
			}
			if analysis.CalleePkgFunc(pass, e, relPath, "NewIDMap") && len(e.Args) == 1 {
				return exprTaint(e.Args[0]) // the map interns into its target
			}
			if analysis.CalleePkgFunc(pass, e, relPath, "FreezeDict") {
				return false // the frozen facade has no mutators anyway
			}
		}
		return false
	}

	setTaint := func(lhs ast.Expr, v bool) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			tainted[obj] = v
		}
	}

	handleAssign := func(lhs, rhs []ast.Expr) {
		if len(rhs) == 1 && len(lhs) > 1 {
			// Multi-value call: taint flows into the results of the two
			// multi-result sources — rel.Materialized on a snapshot
			// (first result) and IDColumns on a tainted relation (the
			// columns and their dictionary).
			taintAll := false
			taintFirst := false
			if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
				if analysis.CalleePkgFunc(pass, call, relPath, "Materialized") {
					taintFirst = materializedFromSnapshot(pass, call)
				} else if sel, recv := analysis.MethodCall(pass, call); sel != nil && recv != nil && sel.Sel.Name == "IDColumns" {
					taintAll = exprTaint(sel.X)
				}
			}
			setTaint(lhs[0], taintFirst || taintAll)
			for _, l := range lhs[1:] {
				setTaint(l, taintAll)
			}
			return
		}
		for i, l := range lhs {
			if i < len(rhs) {
				setTaint(l, exprTaint(rhs[i]))
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			handleAssign(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			if len(n.Values) > 0 {
				lhs := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					lhs[i] = id
				}
				handleAssign(lhs, n.Values)
			}
		case *ast.CallExpr:
			sel, recv := analysis.MethodCall(pass, n)
			if sel == nil || recv == nil {
				return true
			}
			if kind := snapSink(sel.Sel.Name, recv); kind != "" && exprTaint(sel.X) {
				pass.Reportf(n.Pos(), "%s mutating a published snapshot: snapshots are immutable; mutate through the epoch writer and Publish (snapshot contract, see rel.Snapshot)", kind)
			}
		}
		return true
	})
}

// materializedFromSnapshot reports whether a rel.Materialized call
// takes a statically snapshot-typed store, in which case its relation
// result aliases sealed snapshot storage (aliased is always true for
// snapshots).
func materializedFromSnapshot(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Args[0])]
	return ok && isSnapshotType(tv.Type)
}
