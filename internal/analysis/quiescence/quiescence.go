// Package quiescence enforces the dictionary-quiescence contract of
// the engine's exchange family (engine/batchstream.go): while an
// exchange is running, worker callbacks run concurrently with the
// router (StreamPartitioned, StreamPartitionedBatches) or with each
// other (StreamSharded, StreamShardedBatches), and a rel.Interner is
// not safe for read-while-intern — so no worker may intern into any
// dictionary shared with another goroutine until snapshot interning
// lands.
//
// The analyzer inspects every function-literal worker callback passed
// to an engine.Executor Stream* method and flags, lexically inside the
// callback body, calls that intern — Interner.Intern, IDMap.Intern,
// Relation.Add/AddBatch (which intern into the relation's
// dictionary), Store.Add, setjoin's Dict.Key — when their receiver is
// captured from the enclosing scope. A receiver declared inside the
// callback (a worker-local relation or interner) is private to the
// worker and exempt; a captured one is, by construction, visible to
// the router and the sibling workers. In the routed exchanges the
// router is still interning while workers run, so captured-dictionary
// reads (Interner.ID, Interner.Value) are flagged there too;
// the pre-partitioned Stream*Sharded* paths have no router and
// quiescent dictionaries, where reads are the documented safe
// pattern.
//
// The route callback of a routed exchange is exempt by design: it
// runs on the router goroutine, which is the one place interning is
// documented safe (see StreamPartitionedBatches).
package quiescence

import (
	"go/ast"
	"go/types"

	"radiv/internal/analysis"
)

// Analyzer is the quiescence check.
var Analyzer = &analysis.Analyzer{
	Name: "quiescence",
	Doc:  "forbid interning (and, under a live router, dictionary reads) on captured dictionaries inside engine.Stream* worker callbacks",
	Run:  run,
}

const (
	relPath     = "radiv/internal/rel"
	enginePath  = "radiv/internal/engine"
	setjoinPath = "radiv/internal/setjoin"
)

// exchangeMethods maps each exchange entry point to whether its
// router interns concurrently with the workers.
var exchangeMethods = map[string]bool{
	"StreamPartitioned":        true,
	"StreamPartitionedBatches": true,
	"StreamSharded":            false,
	"StreamShardedBatches":     false,
}

func run(pass *analysis.Pass) error {
	storeIface := analysis.NamedInterface(pass, relPath, "Store")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, recv := analysis.MethodCall(pass, call)
			if sel == nil || recv == nil {
				return true
			}
			routed, isExchange := exchangeMethods[sel.Sel.Name]
			if !isExchange || !analysis.IsNamed(recv, enginePath, "Executor") {
				return true
			}
			work, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true // a named worker function: outside the lexical contract
			}
			checkWorker(pass, work, routed, storeIface)
			return true
		})
	}
	return nil
}

// checkWorker flags interning (and, for routed exchanges, dictionary
// reads) on captured receivers anywhere lexically inside the worker
// callback.
func checkWorker(pass *analysis.Pass, work *ast.FuncLit, routed bool, storeIface *types.Interface) {
	ast.Inspect(work.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, recv := analysis.MethodCall(pass, call)
		if sel == nil || recv == nil {
			return true
		}
		kind := classify(sel.Sel.Name, recv, routed, storeIface)
		if kind == "" {
			return true
		}
		if root := analysis.RootIdent(sel.X); root != nil {
			obj := pass.TypesInfo.Uses[root]
			if obj == nil {
				obj = pass.TypesInfo.Defs[root]
			}
			if analysis.DeclaredWithin(obj, work) {
				return true // worker-local dictionary: private to this goroutine
			}
		}
		pass.Reportf(call.Pos(), "%s inside an exchange worker: %s", kind, contractNote(routed))
		return true
	})
}

// classify returns a description of the hazardous call, or "" for
// calls outside the contract.
func classify(name string, recv types.Type, routed bool, storeIface *types.Interface) string {
	switch name {
	case "Intern":
		if analysis.IsNamed(recv, relPath, "Interner") {
			return "Interner.Intern on a captured dictionary"
		}
		if analysis.IsNamed(recv, relPath, "IDMap") {
			return "IDMap.Intern interning into a captured target dictionary"
		}
	case "Add":
		if analysis.IsNamed(recv, relPath, "Relation") {
			return "Relation.Add interning into a captured relation's dictionary"
		}
		if analysis.Implements(recv, storeIface) {
			return "Store.Add interning into a captured store"
		}
	case "AddBatch":
		if analysis.IsNamed(recv, relPath, "Relation") {
			return "Relation.AddBatch interning into a captured relation's dictionary"
		}
	case "Key":
		if analysis.IsNamed(recv, setjoinPath, "Dict") {
			return "Dict.Key interning into a captured canonical-key dictionary"
		}
	case "ID", "Value":
		if routed && analysis.IsNamed(recv, relPath, "Interner") {
			return "Interner." + name + " reading a captured dictionary while the router may still intern"
		}
	}
	return ""
}

func contractNote(routed bool) string {
	if routed {
		return "the router interns concurrently with the workers (dictionary-quiescence contract, see engine.StreamPartitionedBatches)"
	}
	return "sibling workers share the dictionary (dictionary-quiescence contract, see engine.StreamPartitionedBatches)"
}
