package paperfigs

import (
	"testing"

	"radiv/internal/bisim"
	"radiv/internal/core"
	"radiv/internal/division"
	"radiv/internal/gf"
	"radiv/internal/ra"
	"radiv/internal/rel"
	"radiv/internal/setjoin"
)

// TestFig1Exact checks the figure's contents and both query results.
func TestFig1Exact(t *testing.T) {
	d := Fig1()
	if d.Rel("Person").Len() != 8 || d.Rel("Disease").Len() != 6 || d.Rel("Symptoms").Len() != 2 {
		t.Fatalf("Fig. 1 sizes wrong:\n%s", d)
	}
	div := ra.Eval(ra.DivisionExpr("Person", "Symptoms"), d)
	if !div.Equal(Fig1DivisionResult()) {
		t.Errorf("Person ÷ Symptoms = %v", div)
	}
	person := setjoin.Groups(d.Rel("Person"))
	disease := setjoin.Groups(d.Rel("Disease"))
	sj, _ := setjoin.InvertedIndexContainment{}.Join(person, disease)
	if !sj.Equal(Fig1SetJoinResult()) {
		t.Errorf("set-containment join = %v", sj)
	}
}

// TestFig2Exact re-checks Example 5 on the Fig. 2 database.
func TestFig2Exact(t *testing.T) {
	d := Fig2()
	c := rel.Consts(rel.Str("a"))
	for _, tc := range []struct {
		tuple  rel.Tuple
		stored bool
	}{
		{rel.Strs("b", "c"), true},
		{rel.Strs("a", "f"), true},
		{rel.Strs("e", "c"), false},
		{rel.Strs("g"), false},
	} {
		if got := rel.IsCStored(d, c, tc.tuple); got != tc.stored {
			t.Errorf("IsCStored(%v) = %v, want %v", tc.tuple, got, tc.stored)
		}
	}
}

// TestFig3Exact: the checker proves the bisimilarity of Example 12.
func TestFig3Exact(t *testing.T) {
	a, b := Fig3()
	ch := bisim.NewChecker(a, b, rel.Consts())
	if !ch.Bisimilar(rel.Ints(1, 2), rel.Ints(6, 7)) {
		t.Error("A,(1,2) ∼ B,(6,7) expected")
	}
}

// TestFig4Exact: the witness and pump reproduce the construction.
func TestFig4Exact(t *testing.T) {
	d, e := Fig4()
	w := core.FindWitnessAt(e, d)
	if w == nil {
		t.Fatal("no witness on Fig. 4")
	}
	p, err := core.NewPump(w)
	if err != nil {
		t.Fatal(err)
	}
	pts := p.Measure([]int{1, 2, 3, 8})
	for _, pt := range pts {
		if pt.JoinOutput < pt.N*pt.N {
			t.Errorf("n=%d: |E(Dn)| = %d < n²", pt.N, pt.JoinOutput)
		}
	}
	if pts[1].DatabaseSize != 9 || pts[2].DatabaseSize != 13 {
		t.Errorf("|D2|, |D3| = %d, %d; figure says 9 and 13",
			pts[1].DatabaseSize, pts[2].DatabaseSize)
	}
}

// TestFig5Exact: bisimilar pointed databases with different division
// answers (Proposition 26).
func TestFig5Exact(t *testing.T) {
	a, b := Fig5()
	ch := bisim.NewChecker(a, b, rel.Consts())
	if !ch.Bisimilar(rel.Ints(1), rel.Ints(1)) {
		t.Error("A,1 ∼ B,1 expected")
	}
	divA := division.Reference(a.Rel("R"), a.Rel("S"), division.Containment)
	divB := division.Reference(b.Rel("R"), b.Rel("S"), division.Containment)
	if divA.Len() != 2 || divB.Len() != 0 {
		t.Errorf("division answers: A=%v B=%v", divA, divB)
	}
	// Equality variant also distinguishes them (both empty vs both
	// qualify): on A both groups equal S, on B none.
	eqA := division.Reference(a.Rel("R"), a.Rel("S"), division.Equality)
	eqB := division.Reference(b.Rel("R"), b.Rel("S"), division.Equality)
	if eqA.Len() != 2 || eqB.Len() != 0 {
		t.Errorf("equality division answers: A=%v B=%v", eqA, eqB)
	}
}

// TestFig6Exact: Section 4.1's cyclic query.
func TestFig6Exact(t *testing.T) {
	a, b := Fig6()
	ch := bisim.NewChecker(a, b, rel.Consts())
	if !ch.Bisimilar(rel.Strs("alex"), rel.Strs("alex")) {
		t.Error("(A, alex) ∼ (B, alex) expected")
	}
}

// TestExample3Exact: the lousy-bar database behaves as the examples
// describe under both the SA= expression and the GF formula.
func TestExample3Exact(t *testing.T) {
	d := Example3()
	ans := gf.Answers(gf.LousyBarFormula(), d, rel.Consts(), []gf.Var{"x"})
	if !ans.Contains(rel.Strs("bart")) || ans.Contains(rel.Strs("alex")) {
		t.Errorf("Example 7 on Example 3 data = %v", ans)
	}
}
