// Package paperfigs materializes every figure of the paper as data:
// the medical example (Fig. 1), the C-stored illustration (Fig. 2),
// the guarded-bisimulation example (Fig. 3), the Lemma 24 pumping
// example (Fig. 4), the division lower-bound databases (Fig. 5) and
// the cyclic-query databases (Fig. 6). The experiment driver and the
// examples build on these constructors, and the package's tests form
// the per-figure reproduction suite indexed in EXPERIMENTS.md.
package paperfigs

import (
	"radiv/internal/ra"
	"radiv/internal/rel"
)

// Fig1 returns the medical database of Fig. 1 over
// {Person/2, Disease/2, Symptoms/1}.
func Fig1() *rel.Database {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{
		"Person": 2, "Disease": 2, "Symptoms": 1,
	}))
	for _, t := range [][2]string{
		{"An", "headache"}, {"An", "sore throat"}, {"An", "neck pain"},
		{"Bob", "headache"}, {"Bob", "sore throat"}, {"Bob", "memory loss"}, {"Bob", "neck pain"},
		{"Carol", "headache"},
	} {
		d.AddStrs("Person", t[0], t[1])
	}
	for _, t := range [][2]string{
		{"flu", "headache"}, {"flu", "sore throat"},
		{"Lyme", "headache"}, {"Lyme", "sore throat"}, {"Lyme", "memory loss"}, {"Lyme", "neck pain"},
	} {
		d.AddStrs("Disease", t[0], t[1])
	}
	d.AddStrs("Symptoms", "headache")
	d.AddStrs("Symptoms", "neck pain")
	return d
}

// Fig1DivisionResult is Person ÷ Symptoms as printed in the figure.
func Fig1DivisionResult() *rel.Relation {
	return rel.FromTuples(1, rel.Strs("An"), rel.Strs("Bob"))
}

// Fig1SetJoinResult is the set-containment join of the figure.
func Fig1SetJoinResult() *rel.Relation {
	return rel.FromTuples(2,
		rel.Strs("An", "flu"), rel.Strs("Bob", "flu"), rel.Strs("Bob", "Lyme"))
}

// Fig2 returns the database of Fig. 2 over {R/3, S/3, T/2}, used to
// illustrate C-stored tuples with C = {a}.
func Fig2() *rel.Database {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 3, "S": 3, "T": 2}))
	d.AddStrs("R", "a", "b", "c")
	d.AddStrs("R", "d", "e", "f")
	d.AddStrs("S", "d", "a", "b")
	d.AddStrs("T", "e", "a")
	d.AddStrs("T", "f", "c")
	return d
}

// Fig3 returns the pair of databases of Fig. 3 (Example 12).
func Fig3() (a, b *rel.Database) {
	schema := rel.NewSchema(map[string]int{"R": 2, "S": 2, "T": 2})
	a = rel.NewDatabase(schema)
	a.AddInts("R", 1, 2)
	a.AddInts("R", 2, 3)
	a.AddInts("S", 1, 2)
	a.AddInts("T", 2, 3)
	b = rel.NewDatabase(schema)
	b.AddInts("R", 6, 7)
	b.AddInts("R", 7, 8)
	b.AddInts("R", 9, 10)
	b.AddInts("R", 10, 11)
	b.AddInts("S", 6, 7)
	b.AddInts("S", 9, 10)
	b.AddInts("T", 7, 8)
	b.AddInts("T", 10, 11)
	return a, b
}

// Fig4 returns the database D of Fig. 4 and the expression
// E = (R ⋉1=2 T) ⋈3=1 (S ⋉2=1 T) whose pumping the figure depicts.
func Fig4() (*rel.Database, *ra.Join) {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 3, "S": 3, "T": 2}))
	d.AddInts("R", 1, 2, 3)
	d.AddInts("R", 8, 9, 10)
	d.AddInts("S", 3, 4, 5)
	d.AddInts("T", 6, 1)
	d.AddInts("T", 4, 7)
	e1 := ra.EquiSemijoinExpr(ra.R("R", 3), ra.Eq(1, 2), ra.R("T", 2))
	e2 := ra.EquiSemijoinExpr(ra.R("S", 3), ra.Eq(2, 1), ra.R("T", 2))
	return d, ra.NewJoin(e1, ra.Eq(3, 1), e2)
}

// Fig5 returns the databases A and B of Fig. 5: A,1 and B,1 are
// C-guarded bisimilar, yet R ÷ S = {1,2} on A and ∅ on B.
func Fig5() (a, b *rel.Database) {
	schema := rel.NewSchema(map[string]int{"R": 2, "S": 1})
	a = rel.NewDatabase(schema)
	for _, t := range [][2]int64{{1, 7}, {1, 8}, {2, 7}, {2, 8}} {
		a.AddInts("R", t[0], t[1])
	}
	a.AddInts("S", 7)
	a.AddInts("S", 8)
	b = rel.NewDatabase(schema)
	for _, t := range [][2]int64{{1, 7}, {1, 8}, {2, 8}, {2, 9}, {3, 7}, {3, 9}} {
		b.AddInts("R", t[0], t[1])
	}
	b.AddInts("S", 7)
	b.AddInts("S", 8)
	b.AddInts("S", 9)
	return a, b
}

// Fig6 returns the beer databases A and B of Section 4.1:
// (A, alex) ∼ (B, alex) while the cyclic query answers differently.
func Fig6() (a, b *rel.Database) {
	schema := rel.NewSchema(map[string]int{"Visits": 2, "Serves": 2, "Likes": 2})
	a = rel.NewDatabase(schema)
	a.AddStrs("Visits", "alex", "pareto bar")
	a.AddStrs("Serves", "pareto bar", "westmalle")
	a.AddStrs("Likes", "alex", "westmalle")
	b = rel.NewDatabase(schema)
	b.AddStrs("Visits", "alex", "pareto bar")
	b.AddStrs("Visits", "bart", "qwerty bar")
	b.AddStrs("Serves", "pareto bar", "westmalle")
	b.AddStrs("Serves", "qwerty bar", "westvleteren")
	b.AddStrs("Likes", "alex", "westvleteren")
	b.AddStrs("Likes", "bart", "westmalle")
	return a, b
}

// Example3 returns the beer database used for Examples 3 and 7: alex
// visits a good bar, bart visits a lousy one.
func Example3() *rel.Database {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"Likes": 2, "Serves": 2, "Visits": 2}))
	d.AddStrs("Likes", "alex", "westmalle")
	d.AddStrs("Serves", "pareto", "westmalle")
	d.AddStrs("Serves", "qwerty", "stella")
	d.AddStrs("Visits", "alex", "pareto")
	d.AddStrs("Visits", "bart", "qwerty")
	return d
}
