module radiv

go 1.22
