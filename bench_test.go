package radiv

// One benchmark per experiment id of DESIGN.md §3. Each benchmark
// reports, besides time, the custom metrics that carry the paper's
// claims (max intermediate sizes, growth exponents, candidate-pair
// counts). Run with:
//
//	go test -bench=. -benchmem
import (
	"context"
	"fmt"
	"testing"

	"radiv/internal/bisim"
	"radiv/internal/core"
	"radiv/internal/division"
	"radiv/internal/exec"
	"radiv/internal/gf"
	"radiv/internal/paperfigs"
	"radiv/internal/plan"
	"radiv/internal/ra"
	"radiv/internal/rel"
	"radiv/internal/sa"
	"radiv/internal/setjoin"
	"radiv/internal/translate"
	"radiv/internal/workload"
	"radiv/internal/xra"
)

// BenchmarkF1MedicalExample (exp F1) runs the Fig. 1 queries.
func BenchmarkF1MedicalExample(b *testing.B) {
	d := paperfigs.Fig1()
	person := setjoin.Groups(d.Rel("Person"))
	disease := setjoin.Groups(d.Rel("Disease"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		division.Hash{}.Divide(d.Rel("Person"), d.Rel("Symptoms"), division.Containment)
		setjoin.InvertedIndexContainment{}.Join(person, disease)
	}
}

// BenchmarkF3Bisimulation (exp F3) decides the Example 12
// bisimilarity.
func BenchmarkF3Bisimulation(b *testing.B) {
	a, bb := paperfigs.Fig3()
	for i := 0; i < b.N; i++ {
		ch := bisim.NewChecker(a, bb, rel.Consts())
		if !ch.Bisimilar(rel.Ints(1, 2), rel.Ints(6, 7)) {
			b.Fatal("bisimilarity lost")
		}
	}
}

// BenchmarkF4Lemma24Pump (exp F4) builds Dn for growing n and
// evaluates the pumped join, reporting the realized quadratic ratio
// |E(Dn)|/n².
func BenchmarkF4Lemma24Pump(b *testing.B) {
	d, e := paperfigs.Fig4()
	w := core.FindWitnessAt(e, d)
	if w == nil {
		b.Fatal("no witness")
	}
	p, err := core.NewPump(w)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var pts []core.GrowthPoint
			for i := 0; i < b.N; i++ {
				pts = p.Measure([]int{n})
			}
			b.ReportMetric(float64(pts[0].JoinOutput)/float64(n*n), "out/n²")
			b.ReportMetric(float64(pts[0].DatabaseSize)/float64(n), "|Dn|/n")
		})
	}
}

// BenchmarkF5DivisionLowerBound (exp F5) runs the Proposition 26
// bisimilarity check.
func BenchmarkF5DivisionLowerBound(b *testing.B) {
	a, bb := paperfigs.Fig5()
	for i := 0; i < b.N; i++ {
		ch := bisim.NewChecker(a, bb, rel.Consts())
		if !ch.Bisimilar(rel.Ints(1), rel.Ints(1)) {
			b.Fatal("Proposition 26 bisimilarity lost")
		}
	}
}

// BenchmarkF6CyclicQuery (exp F6) runs the Section 4.1 check.
func BenchmarkF6CyclicQuery(b *testing.B) {
	a, bb := paperfigs.Fig6()
	for i := 0; i < b.N; i++ {
		ch := bisim.NewChecker(a, bb, rel.Consts())
		if !ch.Bisimilar(rel.Strs("alex"), rel.Strs("alex")) {
			b.Fatal("Section 4.1 bisimilarity lost")
		}
	}
}

// BenchmarkE3LousyBar (exp E3) evaluates the Example 3 query in both
// algebras on a grown beer database.
func BenchmarkE3LousyBar(b *testing.B) {
	d := workload.BeerDatabase(1, 500, 60)
	e := sa.LousyBarExpr()
	f := gf.LousyBarFormula()
	b.Run("SA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sa.Eval(e, d)
		}
	})
	b.Run("GF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gf.Answers(f, d, rel.Consts(), []gf.Var{"x"})
		}
	})
}

// BenchmarkT8Translation (exp T8) measures the Theorem 8 translations
// plus one differential evaluation.
func BenchmarkT8Translation(b *testing.B) {
	schema := rel.NewSchema(map[string]int{"Likes": 2, "Serves": 2, "Visits": 2})
	e := sa.LousyBarExpr()
	d := workload.BeerDatabase(2, 12, 5)
	for i := 0; i < b.N; i++ {
		f, vars, err := translate.ToGF(e, schema)
		if err != nil {
			b.Fatal(err)
		}
		if !gf.Answers(f, d, rel.Consts(), vars).Equal(sa.Eval(e, d)) {
			b.Fatal("Theorem 8 violated")
		}
	}
}

// BenchmarkT17Dichotomy (exp T17) classifies the canonical corpus and
// reports the measured growth exponents of both classes.
func BenchmarkT17Dichotomy(b *testing.B) {
	gen := func(scale int) *rel.Database {
		d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 2, "S": 1}))
		for i := 0; i < scale; i++ {
			d.AddInts("R", int64(i), int64(i%7))
			d.AddInts("S", int64(3*i))
		}
		return d
	}
	linear := ra.EquiSemijoinExpr(ra.R("R", 2), ra.Eq(2, 1), ra.R("S", 1))
	quadratic := ra.DivisionExpr("R", "S")
	scales := []int{16, 32, 64, 128}
	var pLin, pQuad float64
	for i := 0; i < b.N; i++ {
		pLin = ra.GrowthExponent(ra.Profile(linear, gen, scales))
		pQuad = ra.GrowthExponent(ra.Profile(quadratic, gen, scales))
	}
	b.ReportMetric(pLin, "linear-exponent")
	b.ReportMetric(pQuad, "quadratic-exponent")
}

// BenchmarkT18Linearize (exp T18) builds the Z1∪Z2 translation and
// verifies it on one seed.
func BenchmarkT18Linearize(b *testing.B) {
	e := ra.NewJoin(ra.R("R", 2), ra.Eq(2, 1), ra.NewSelectConst(1, rel.Int(4), ra.R("S", 1)))
	seeds := core.DefaultSeeds(e, 3)
	for i := 0; i < b.N; i++ {
		lin, err := core.Linearize(e)
		if err != nil {
			b.Fatal(err)
		}
		if !sa.Eval(lin, seeds[0]).Equal(ra.Eval(e, seeds[0])) {
			b.Fatal("Theorem 18 translation wrong")
		}
	}
}

// benchDivisionInput builds the P26 scaling family (divisor grows with
// n so the quadratic term is visible).
func benchDivisionInput(n int) (*rel.Relation, *rel.Relation) {
	r := rel.NewRelation(2)
	for i := 0; i < n; i++ {
		r.Add(rel.Ints(int64(i), int64(i%9)))
		r.Add(rel.Ints(int64(i), int64((i+3)%9)))
	}
	s := rel.NewRelation(1)
	for i := 0; i < n/4; i++ {
		s.Add(rel.Ints(int64(100 + i)))
	}
	return r, s
}

// BenchmarkP26Division (exps P26a, P26b) sweeps all division
// algorithms over growing inputs, reporting max materialized tuples.
func BenchmarkP26Division(b *testing.B) {
	for _, n := range []int{200, 800} {
		r, s := benchDivisionInput(n)
		for _, alg := range division.All() {
			b.Run(fmt.Sprintf("%s/n=%d", alg.Name(), n), func(b *testing.B) {
				var st division.Stats
				for i := 0; i < b.N; i++ {
					_, st = alg.Divide(r, s, division.Containment)
				}
				b.ReportMetric(float64(st.MaxMemoryTuples), "max-tuples")
			})
		}
	}
}

// BenchmarkP26EqualityDivision covers the equality variant.
func BenchmarkP26EqualityDivision(b *testing.B) {
	r, s := benchDivisionInput(400)
	for _, alg := range division.All() {
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.Divide(r, s, division.Equality)
			}
		})
	}
}

// BenchmarkSJ1Containment (exp SJ1) sweeps the containment-join
// algorithms, reporting candidate pairs per S-group.
func BenchmarkSJ1Containment(b *testing.B) {
	for _, n := range []int{100, 400} {
		wl := workload.SetJoin{RGroups: n, SGroups: n, MeanSize: 6,
			Dist: workload.Uniform, Domain: 400, ContainFraction: 0.05, Seed: 7}
		r, s := wl.Generate()
		gr, gs := setjoin.Groups(r), setjoin.Groups(s)
		for _, alg := range setjoin.ContainmentAlgorithms() {
			b.Run(fmt.Sprintf("%s/n=%d", alg.Name(), n), func(b *testing.B) {
				var st setjoin.Stats
				for i := 0; i < b.N; i++ {
					_, st = alg.Join(gr, gs)
				}
				b.ReportMetric(float64(st.PairsConsidered)/float64(n), "pairs/group")
			})
		}
	}
}

// BenchmarkSJ1Zipf covers the skewed set-size distribution.
func BenchmarkSJ1Zipf(b *testing.B) {
	wl := workload.SetJoin{RGroups: 300, SGroups: 300, MeanSize: 5,
		Dist: workload.Zipf, Domain: 500, ContainFraction: 0.1, Seed: 11}
	r, s := wl.Generate()
	gr, gs := setjoin.Groups(r), setjoin.Groups(s)
	for _, alg := range setjoin.ContainmentAlgorithms() {
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.Join(gr, gs)
			}
		})
	}
}

// BenchmarkSJ2Equality (exp SJ2) sweeps the equality-join algorithms.
func BenchmarkSJ2Equality(b *testing.B) {
	for _, n := range []int{200, 800} {
		wl := workload.SetJoin{RGroups: n, SGroups: n, MeanSize: 4,
			Dist: workload.Fixed, Domain: 12, ContainFraction: 0, Seed: 3}
		r, s := wl.Generate()
		gr, gs := setjoin.Groups(r), setjoin.Groups(s)
		for _, alg := range setjoin.EqualityAlgorithms() {
			b.Run(fmt.Sprintf("%s/n=%d", alg.Name(), n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					alg.Join(gr, gs)
				}
			})
		}
	}
}

// BenchmarkG5GammaDivision (exp G5) compares the quadratic pure-RA
// division expression with the linear Section 5 γ-expression,
// reporting max intermediates.
func BenchmarkG5GammaDivision(b *testing.B) {
	r, s := benchDivisionInput(400)
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 2, "S": 1}))
	for _, t := range r.Tuples() {
		d.Add("R", t)
	}
	for _, t := range s.Tuples() {
		d.Add("S", t)
	}
	b.Run("pure-RA", func(b *testing.B) {
		var tr *ra.Trace
		for i := 0; i < b.N; i++ {
			_, tr = ra.EvalTraced(ra.DivisionExpr("R", "S"), d)
		}
		b.ReportMetric(float64(tr.MaxIntermediate), "max-intermediate")
	})
	b.Run("gamma", func(b *testing.B) {
		var tr *xra.Trace
		for i := 0; i < b.N; i++ {
			_, tr = xra.EvalTraced(xra.ContainmentDivision("R", "S"), d)
		}
		b.ReportMetric(float64(tr.MaxIntermediate), "max-intermediate")
	})
}

// BenchmarkAblationJoinStrategies compares the hash-join fast path in
// the RA evaluator against pure nested loops (DESIGN.md design-choice
// ablation): the same division expression with and without equality
// atoms available to the executor.
func BenchmarkAblationJoinStrategies(b *testing.B) {
	r, s := benchDivisionInput(200)
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 2, "S": 1}))
	for _, t := range r.Tuples() {
		d.Add("R", t)
	}
	for _, t := range s.Tuples() {
		d.Add("S", t)
	}
	// Hash path: equi-join on column 1; nested path: same join
	// expressed as a product followed by a selection.
	hashJoin := ra.NewJoin(ra.R("R", 2), ra.Eq(1, 1), ra.R("R", 2))
	nested := ra.NewSelect(1, ra.OpEq, 3, ra.Product(ra.R("R", 2), ra.R("R", 2)))
	b.Run("equi-hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ra.Eval(hashJoin, d)
		}
	})
	b.Run("product-select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ra.Eval(nested, d)
		}
	})
	_ = s
}

// largeDivisionInput is the big workload behind the engine
// before/after comparison: 20k dividend tuples over 2000 groups with a
// 32-element divisor and a 20% match rate.
func largeDivisionInput() (*rel.Relation, *rel.Relation) {
	wl := workload.Division{
		Groups: 2000, GroupSize: 10, Dist: workload.Uniform,
		DivisorSize: 32, MatchFraction: 0.2, Domain: 4096, Seed: 5,
	}
	return wl.Generate()
}

// BenchmarkEngineDivisionKeyPath compares the string-key hash division
// (the pre-engine implementation, kept as HashStringKey) against the
// interned path and the parallel partitioned executor on the large
// division workload. This is the acceptance benchmark for the
// interning engine: hash must beat hash-string by ≥2x.
func BenchmarkEngineDivisionKeyPath(b *testing.B) {
	r, s := largeDivisionInput()
	algs := []division.Algorithm{
		division.HashStringKey{},
		division.Hash{},
		division.ParallelHash{},
	}
	for _, alg := range algs {
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.Divide(r, s, division.Containment)
			}
		})
	}
}

// BenchmarkEngineSetJoinParallel compares the sequential signature
// containment join and hash equality join against their partitioned
// parallel counterparts on a large set-join workload.
func BenchmarkEngineSetJoinParallel(b *testing.B) {
	wl := workload.SetJoin{RGroups: 2000, SGroups: 2000, MeanSize: 8,
		Dist: workload.Uniform, Domain: 2000, ContainFraction: 0.05, Seed: 13}
	r, s := wl.Generate()
	gr, gs := setjoin.Groups(r), setjoin.Groups(s)
	algs := []setjoin.Algorithm{
		setjoin.SignatureContainment{},
		setjoin.ParallelSignatureContainment{},
		setjoin.HashEquality{},
		setjoin.ParallelHashEquality{},
	}
	for _, alg := range algs {
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.Join(gr, gs)
			}
		})
	}
}

// BenchmarkStreamedDivision (exp ST1) evaluates the classical
// division expression with the materialized and the streaming
// executor, reporting each one's memory observable: max intermediate
// (quadratic, Proposition 26) versus max resident (linear — the
// quadratic product flows through the pipeline but is never stored).
func BenchmarkStreamedDivision(b *testing.B) {
	r, s := benchDivisionInput(400)
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 2, "S": 1}))
	for _, t := range r.Tuples() {
		d.Add("R", t)
	}
	for _, t := range s.Tuples() {
		d.Add("S", t)
	}
	e := ra.DivisionExpr("R", "S")
	b.Run("materialized", func(b *testing.B) {
		var tr *ra.Trace
		for i := 0; i < b.N; i++ {
			_, tr = ra.EvalTraced(e, d)
		}
		b.ReportMetric(float64(tr.MaxIntermediate), "max-intermediate")
	})
	b.Run("streamed", func(b *testing.B) {
		var tr *ra.Trace
		for i := 0; i < b.N; i++ {
			_, tr = ra.EvalStreamedTraced(e, d)
		}
		b.ReportMetric(float64(tr.MaxResident), "max-resident")
		b.ReportMetric(float64(tr.MaxIntermediate), "max-intermediate")
	})
}

// BenchmarkStreamedDedupFilter measures the ROADMAP's time-for-memory
// trade on a projection feeding a join's probe side: R has 40 tuples
// per group key, so π1(R) emits every key 40 times and the deferred-
// dedup executor replays the join's candidate scan once per duplicate
// probe (40× the probes), while the opt-in pipelined dedup filter
// (StreamOptions.DedupProjections) spends one resident tuple per
// distinct key to probe once. The max-resident metrics quantify the
// memory side of the trade.
func BenchmarkStreamedDedupFilter(b *testing.B) {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 2, "S": 2}))
	for a := 0; a < 50; a++ {
		for j := 0; j < 40; j++ {
			d.AddInts("R", int64(a), int64(1000+j))
		}
		for j := 0; j < 20; j++ {
			d.AddInts("S", int64(a), int64(j))
		}
	}
	e := ra.NewJoin(ra.NewProject([]int{1}, ra.R("R", 2)), ra.Eq(1, 1), ra.R("S", 2))
	for _, cfg := range []struct {
		name string
		opts ra.StreamOptions
	}{
		{"replay", ra.StreamOptions{Dedup: ra.DedupOff}},
		{"dedup-filter", ra.StreamOptions{DedupProjections: true}},
		// The cost-based default should land on the filter here: 40
		// duplicate probes per key against ~20-candidate buckets dwarf
		// one resident tuple per distinct key.
		{"auto", ra.StreamOptions{}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var tr *ra.Trace
			for i := 0; i < b.N; i++ {
				_, tr = ra.EvalStreamedTracedOpts(e, d, cfg.opts)
			}
			b.ReportMetric(float64(tr.MaxResident), "max-resident")
			b.ReportMetric(float64(tr.TotalTuples), "total-flow")
		})
	}
}

// BenchmarkVectorizedDivision (exp ST4) is the vectorized-execution
// acceptance benchmark: the classical division expression evaluated
// tuple-at-a-time against the columnar batch executor at batch sizes
// 1, 64 and 1024. The vectorized arm at default batch size must beat
// the tuple arm by ≥2x; allocs/op (visible with -benchmem) drop by two
// orders of magnitude because batches are pooled and the hot loops
// never leave interned IDs.
func BenchmarkVectorizedDivision(b *testing.B) {
	r, s := benchDivisionInput(400)
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 2, "S": 1}))
	for _, t := range r.Tuples() {
		d.Add("R", t)
	}
	for _, t := range s.Tuples() {
		d.Add("S", t)
	}
	e := ra.DivisionExpr("R", "S")
	b.Run("tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ra.EvalStreamed(e, d)
		}
	})
	for _, size := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("vector-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			opts := ra.StreamOptions{Vectorize: true, BatchSize: size}
			for i := 0; i < b.N; i++ {
				ra.EvalStreamedTracedOpts(e, d, opts)
			}
		})
	}
}

// BenchmarkVectorizedPipeline (exp ST4) prices the pipelined
// select→project→join path on a flow-dominated workload: 5000 probe
// tuples stream through the operators, 50 reach the output, so the
// per-row costs of the pipeline — not the shared result sink — are
// what the allocs/op and ns/op numbers measure. Acceptance: allocs/op
// on the vectorized arm is ≥5x below the tuple arm.
func BenchmarkVectorizedPipeline(b *testing.B) {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"P": 2, "Q": 2}))
	for i := 0; i < 5000; i++ {
		d.AddInts("P", int64(i), int64(i%7))
	}
	for j := 0; j < 50; j++ {
		d.AddInts("Q", int64(100*j), int64(j))
	}
	e := ra.NewJoin(
		ra.NewProject([]int{1}, ra.NewSelect(1, ra.OpNe, 2, ra.R("P", 2))),
		ra.Eq(1, 1), ra.R("Q", 2))
	b.Run("tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ra.EvalStreamed(e, d)
		}
	})
	b.Run("vector", func(b *testing.B) {
		b.ReportAllocs()
		opts := ra.StreamOptions{Vectorize: true}
		for i := 0; i < b.N; i++ {
			ra.EvalStreamedTracedOpts(e, d, opts)
		}
	})
}

// BenchmarkRelationAdd measures the stored-clone path of Relation.Add
// with -benchmem: the chunked clone arena and the chained dedup index
// put the steady-state cost of an accepted tuple well under one
// allocation (the pre-arena path paid a clone allocation plus an index
// bucket append per tuple). The dup arm re-adds existing tuples:
// rejected duplicates must not allocate at all.
func BenchmarkRelationAdd(b *testing.B) {
	tuples := make([]rel.Tuple, 4096)
	for i := range tuples {
		tuples[i] = rel.Ints(int64(i), int64(i%97))
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := rel.NewRelationSized(2, len(tuples))
			for _, t := range tuples {
				r.Add(t)
			}
		}
	})
	b.Run("dup", func(b *testing.B) {
		r := rel.NewRelationSized(2, len(tuples))
		for _, t := range tuples {
			r.Add(t)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, t := range tuples {
				r.Add(t)
			}
		}
	})
	b.Run("add-batch", func(b *testing.B) {
		src := rel.NewRelationSized(2, len(tuples))
		for _, t := range tuples {
			src.Add(t)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := rel.NewRelationSized(2, len(tuples))
			cur := src.BatchScan()
			for bt, ok := cur.NextBatch(); ok; bt, ok = cur.NextBatch() {
				r.AddBatch(bt)
				bt.Release()
			}
		}
	})
}

// BenchmarkStreamedSemijoinAlgebra compares the materialized and
// streaming SA executors on the ST2 antijoin shape, reporting each
// one's memory observable.
func BenchmarkStreamedSemijoinAlgebra(b *testing.B) {
	r, s := benchDivisionInput(400)
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 2, "S": 1}))
	for _, t := range r.Tuples() {
		d.Add("R", t)
	}
	for _, t := range s.Tuples() {
		d.Add("S", t)
	}
	e := sa.NewProject([]int{1}, sa.NewAntijoin(sa.R("R", 2), ra.Eq(2, 1), sa.R("S", 1)))
	b.Run("materialized", func(b *testing.B) {
		var tr *sa.Trace
		for i := 0; i < b.N; i++ {
			_, tr = sa.EvalTraced(e, d)
		}
		b.ReportMetric(float64(tr.MaxIntermediate), "max-intermediate")
	})
	b.Run("streamed", func(b *testing.B) {
		var tr *sa.Trace
		for i := 0; i < b.N; i++ {
			_, tr = sa.EvalStreamedTraced(e, d)
		}
		b.ReportMetric(float64(tr.MaxResident), "max-resident")
	})
}

// BenchmarkVectorizedSemijoin (exp ST6) is the SA-vectorization
// acceptance benchmark on a flow-dominated probe: 20000 probe tuples
// stream through the semijoin, 50 survive, so the numbers price the
// per-row probe cost — not the shared result sink. The build side
// interns into an ID-keyed distinct-key table and the probe compacts
// batches in place through a selection vector, so at real batch sizes
// the per-probed-row cost is a column load and a set lookup — no tuple
// decode, no per-row allocation (batch size 1 prices the machinery
// with none of its amortization).
func BenchmarkVectorizedSemijoin(b *testing.B) {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"P": 2, "Q": 1}))
	for i := 0; i < 20000; i++ {
		d.AddInts("P", int64(i), int64(i%7))
	}
	for j := 0; j < 50; j++ {
		d.AddInts("Q", int64(400*j))
	}
	e := sa.NewSemijoin(sa.R("P", 2), ra.Eq(1, 1), sa.R("Q", 1))
	b.Run("tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sa.EvalStreamed(e, d)
		}
	})
	for _, size := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("vector-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sa.EvalVectorizedTracedSized(e, d, size)
			}
		})
	}
}

// BenchmarkVectorizedGamma (exp ST6) is the γ-vectorization acceptance
// benchmark on a flow-dominated aggregate: 20000 input tuples collapse
// into 7 groups, so the numbers price the per-row grouping cost.
// Group keys gather columnar-ly through IDMap caches into one key
// dictionary, so grouping a seen value is an array load, a hash of
// flat IDs and a chained-index walk — no per-row tuple build or
// re-interning.
func BenchmarkVectorizedGamma(b *testing.B) {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"G": 2}))
	for i := 0; i < 20000; i++ {
		d.AddInts("G", int64(i%7), int64(i%400))
	}
	e := xra.NewGamma([]int{1}, 2, &xra.Wrap{E: ra.R("G", 2)})
	b.Run("tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			xra.EvalStreamed(e, d)
		}
	})
	for _, size := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("vector-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				xra.EvalVectorizedTracedSized(e, d, size)
			}
		})
	}
}

// BenchmarkPlannerDivision (exp ST5) prices the planner on the P26
// division family: compilation itself (rewrite rules included),
// executing the expression as written, and executing the optimized
// γ-division plan. The optimized/unoptimized gap is the planner's
// payoff — the compile arm is its overhead.
func BenchmarkPlannerDivision(b *testing.B) {
	r, s := benchDivisionInput(400)
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 2, "S": 1}))
	for _, t := range r.Tuples() {
		d.Add("R", t)
	}
	for _, t := range s.Tuples() {
		d.Add("S", t)
	}
	e := ra.DivisionExpr("R", "S")
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Compile(e, d, plan.Options{Optimize: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	p0, err := plan.Compile(e, d, plan.Options{})
	if err != nil {
		b.Fatal(err)
	}
	p1, err := plan.Compile(e, d, plan.Options{Optimize: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unoptimized", func(b *testing.B) {
		var tr *plan.Trace
		for i := 0; i < b.N; i++ {
			_, tr = p0.ExecuteTraced()
		}
		b.ReportMetric(float64(tr.MaxIntermediate), "max-intermediate")
	})
	b.Run("optimized", func(b *testing.B) {
		var tr *plan.Trace
		for i := 0; i < b.N; i++ {
			_, tr = p1.ExecuteTraced()
		}
		b.ReportMetric(float64(tr.MaxIntermediate), "max-intermediate")
	})
}

// BenchmarkBisimScaling measures the bisimilarity decision procedure
// on growing chain databases (an ablation for the fixpoint algorithm).
func BenchmarkBisimScaling(b *testing.B) {
	build := func(n int) *rel.Database {
		d := rel.NewDatabase(rel.NewSchema(map[string]int{"E": 2}))
		for i := 0; i < n; i++ {
			d.AddInts("E", int64(i), int64(i+1))
		}
		return d
	}
	for _, n := range []int{8, 16, 32} {
		a, bb := build(n), build(n)
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ch := bisim.NewChecker(a, bb, rel.Consts())
				if !ch.Bisimilar(rel.Ints(0), rel.Ints(0)) {
					b.Fatal("identical chains must be bisimilar")
				}
			}
		})
	}
}

// BenchmarkGovernedOverhead prices the fault-tolerance plumbing of
// PR 10: the same vectorized division run ungoverned (nil governor —
// the legacy path, which must be byte-for-byte the pre-governor
// executor) and through the governed Context boundary with an active
// context and budgets. The governed arm's only steady-state cost is
// one guard branch per batch on the columnar path (one per 64 tuples
// on the tuple path), so the two arms must stay within noise of each
// other. Acceptance: no >20% spread between the arms at the default
// batch size.
func BenchmarkGovernedOverhead(b *testing.B) {
	r, s := benchDivisionInput(400)
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 2, "S": 1}))
	for _, t := range r.Tuples() {
		d.Add("R", t)
	}
	for _, t := range s.Tuples() {
		d.Add("S", t)
	}
	e := ra.DivisionExpr("R", "S")
	for _, size := range []int{64, 1024} {
		opts := ra.StreamOptions{Vectorize: true, BatchSize: size}
		b.Run(fmt.Sprintf("ungoverned-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ra.EvalStreamedTracedOpts(e, d, opts)
			}
		})
		b.Run(fmt.Sprintf("governed-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			gopts := opts
			gopts.Limits = exec.Limits{MaxResident: 1 << 30}
			for i := 0; i < b.N; i++ {
				if _, _, err := ra.EvalStreamedContext(ctx, e, d, gopts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
