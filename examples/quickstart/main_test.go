package main

import (
	"strings"
	"testing"

	"radiv/internal/division"
	"radiv/internal/ra"
)

// The quickstart's core path: students 1 and 3 pass all required
// courses, and the RA expression, the hash division and the parallel
// division all agree on that.
func TestQuickstartCorePath(t *testing.T) {
	d := database()
	if d.Size() != 9 {
		t.Fatalf("database size = %d, want 9", d.Size())
	}
	div := ra.Eval(ra.DivisionExpr("R", "S"), d)
	if div.Len() != 2 {
		t.Fatalf("R ÷ S has %d tuples, want 2", div.Len())
	}
	hash, _ := division.Hash{}.Divide(d.Rel("R"), d.Rel("S"), division.Containment)
	par, _ := division.ParallelHash{Workers: 4}.Divide(d.Rel("R"), d.Rel("S"), division.Containment)
	if !hash.Equal(div) || !par.Equal(div) {
		t.Errorf("division algorithms disagree:\nRA %vhash %vparallel %v", div, hash, par)
	}
}

func TestQuickstartRuns(t *testing.T) {
	var b strings.Builder
	run(&b)
	out := b.String()
	for _, want := range []string{
		"database (9 tuples)",
		"classification of the division expression: quadratic",
		"classification of the semijoin query:      linear",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}
