package main

import (
	"strings"
	"testing"

	"radiv/internal/division"
	"radiv/internal/ra"
	"radiv/internal/rel"
)

// The quickstart's core path: students 1 and 3 pass all required
// courses, and the RA expression, the hash division and the parallel
// division all agree on that.
func TestQuickstartCorePath(t *testing.T) {
	d := database()
	if d.Size() != 9 {
		t.Fatalf("database size = %d, want 9", d.Size())
	}
	div := ra.Eval(ra.DivisionExpr("R", "S"), d)
	if div.Len() != 2 {
		t.Fatalf("R ÷ S has %d tuples, want 2", div.Len())
	}
	hash, _ := division.Hash{}.Divide(d.Rel("R"), d.Rel("S"), division.Containment)
	par, _ := division.ParallelHash{Workers: 4}.Divide(d.Rel("R"), d.Rel("S"), division.Containment)
	if !hash.Equal(div) || !par.Equal(div) {
		t.Errorf("division algorithms disagree:\nRA %vhash %vparallel %v", div, hash, par)
	}
	// Cursor-fed parallel division at two workers (the configuration
	// CI pins): byte-identical to the sequential hash emission.
	cur := division.ParallelHash{Workers: 2}.DivideStream(d.Rel("R").Cursor(), d.Rel("S"), division.Containment)
	streamed := rel.NewRelation(1)
	for tp, ok := cur.Next(); ok; tp, ok = cur.Next() {
		streamed.Add(tp)
	}
	if !streamed.Equal(hash) || streamed.String() != hash.String() {
		t.Errorf("cursor-fed division diverges:\nstreamed %vhash %v", streamed, hash)
	}
}

func TestQuickstartRuns(t *testing.T) {
	var b strings.Builder
	run(&b)
	out := b.String()
	for _, want := range []string{
		"database (9 tuples)",
		"classification of the division expression: quadratic",
		"classification of the semijoin query:      linear",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}
