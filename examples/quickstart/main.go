// Quickstart: a tour of the radiv library — build a database, run
// relational-algebra and semijoin-algebra queries, measure
// intermediate sizes, classify an expression with the dichotomy
// analyzer, and divide with a direct algorithm.
package main

import (
	"fmt"
	"io"
	"os"

	"radiv/internal/core"
	"radiv/internal/division"
	"radiv/internal/ra"
	"radiv/internal/rel"
	"radiv/internal/sa"
)

func main() { run(os.Stdout) }

// database builds the running example: R relates students to the
// courses they passed, S lists the required courses.
func database() *rel.Database {
	d := rel.NewDatabase(rel.NewSchema(map[string]int{"R": 2, "S": 1}))
	for _, t := range [][2]int64{
		{1, 101}, {1, 102}, {1, 103},
		{2, 101}, {2, 103},
		{3, 101}, {3, 102},
	} {
		d.AddInts("R", t[0], t[1])
	}
	d.AddInts("S", 101)
	d.AddInts("S", 102)
	return d
}

func run(w io.Writer) {
	d := database()
	fmt.Fprintf(w, "database (%d tuples):\n%s\n", d.Size(), d)

	// Division in pure relational algebra: who passed all required
	// courses? The classical expression π1(R) − π1((π1(R)×S) − R).
	e := ra.DivisionExpr("R", "S")
	res, trace := ra.EvalTraced(e, d)
	fmt.Fprintf(w, "R ÷ S via RA expression: %s", res)
	fmt.Fprintf(w, "largest intermediate result: %d tuples (the × is the quadratic culprit)\n\n", trace.MaxIntermediate)

	// The same division with a direct algorithm: linear.
	hash, hashStats := division.Hash{}.Divide(d.Rel("R"), d.Rel("S"), division.Containment)
	fmt.Fprintf(w, "R ÷ S via hash division:  %s", hash)
	fmt.Fprintf(w, "hash division probes: %d (linear in the input)\n\n", hashStats.Probes)

	// A semijoin-algebra query: students that passed some required
	// course. SA= expressions are linear by construction.
	filter := sa.NewSemijoin(sa.R("R", 2), ra.Eq(2, 1), sa.R("S", 1))
	some := sa.Eval(sa.NewProject([]int{1}, filter), d)
	fmt.Fprintf(w, "students passing ≥1 required course (SA=): %s\n", some)

	// The dichotomy analyzer (Theorems 17 and 18): the division
	// expression is quadratic, the semijoin query is linear.
	verdict, err := core.Classify(e, nil)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "classification of the division expression: %s\n", verdict)

	linear := ra.EquiSemijoinExpr(ra.R("R", 2), ra.Eq(2, 1), ra.R("S", 1))
	verdict2, err := core.Classify(linear, nil)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "classification of the semijoin query:      %s\n", verdict2)
}
