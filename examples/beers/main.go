// Beers: Ullman's beer-drinkers schema as used in Examples 3 and 7
// and Section 4.1 of the paper. Evaluates the lousy-bar query in the
// semijoin algebra and the guarded fragment, translates between them
// (Theorem 8), and demonstrates the Section 4.1 inexpressibility: the
// cyclic query distinguishes two databases that are guarded bisimilar.
package main

import (
	"fmt"
	"io"
	"os"

	"radiv/internal/bisim"
	"radiv/internal/gf"
	"radiv/internal/paperfigs"
	"radiv/internal/rel"
	"radiv/internal/sa"
	"radiv/internal/translate"
)

func main() { run(os.Stdout) }

// cyclicQuery evaluates the Section 4.1 query "drinkers visiting a bar
// that serves a beer they like" directly.
func cyclicQuery(db *rel.Database) *rel.Relation {
	out := rel.NewRelation(1)
	serves := db.Rel("Serves").Tuples()
	for _, v := range db.Rel("Visits").Tuples() {
		for _, s := range serves {
			if s[0].Equal(v[1]) && db.Rel("Likes").Contains(rel.Tuple{v[0], s[1]}) {
				out.Add(rel.Tuple{v[0]})
			}
		}
	}
	return out
}

func run(w io.Writer) {
	d := paperfigs.Example3()
	fmt.Fprintf(w, "beer database:\n%s\n", d)

	// Example 3: the lousy-bar query in SA=.
	e := sa.LousyBarExpr()
	fmt.Fprintf(w, "SA= expression: %s\n", e)
	fmt.Fprintf(w, "drinkers visiting a lousy bar: %s\n", sa.Eval(e, d))

	// Example 7: the same query in the guarded fragment.
	f := gf.LousyBarFormula()
	fmt.Fprintf(w, "GF formula: %s\n", f)
	fmt.Fprintf(w, "GF answers: %s\n", gf.Answers(f, d, rel.Consts(), []gf.Var{"x"}))

	// Theorem 8: translate the SA= expression into GF and back.
	formula, vars, err := translate.ToGF(e, d.Schema())
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "translated formula answers: %s", gf.Answers(formula, d, rel.Consts(), vars))
	back, err := translate.ToSA(f, []gf.Var{"x"}, d.Schema(), rel.Consts())
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "translated-back SA= answers: %s\n", sa.Eval(back, d))

	// Section 4.1: the cyclic query "drinkers visiting a bar that
	// serves a beer they like" cannot be expressed in SA= — the two
	// databases of Fig. 6 are bisimilar at alex yet answer differently.
	a, b := paperfigs.Fig6()
	ch := bisim.NewChecker(a, b, rel.Consts())
	fmt.Fprintf(w, "Fig. 6: (A, alex) ~ (B, alex): %v\n", ch.Bisimilar(rel.Strs("alex"), rel.Strs("alex")))
	fmt.Fprintf(w, "Q(A) = %sQ(B) = %s", cyclicQuery(a), cyclicQuery(b))
	fmt.Fprintln(w, "same pointed value, different answers ⇒ Q ∉ SA= ⇒ quadratic in RA (Section 4.1)")
}
