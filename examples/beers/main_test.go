package main

import (
	"strings"
	"testing"

	"radiv/internal/paperfigs"
	"radiv/internal/rel"
	"radiv/internal/sa"
)

// The beers example's core path: the lousy-bar query answers {bart} on
// Example 3, and the Fig. 6 cyclic query distinguishes the two
// bisimilar databases (1 answer vs none).
func TestBeersCorePath(t *testing.T) {
	d := paperfigs.Example3()
	ans := sa.Eval(sa.LousyBarExpr(), d)
	if ans.Len() != 1 || !ans.Contains(rel.Strs("bart")) {
		t.Errorf("lousy-bar answers = %v, want {bart}", ans)
	}
	a, b := paperfigs.Fig6()
	qa, qb := cyclicQuery(a), cyclicQuery(b)
	if qa.Len() != 1 || !qa.Contains(rel.Strs("alex")) {
		t.Errorf("Q(A) = %v, want {alex}", qa)
	}
	if qb.Len() != 0 {
		t.Errorf("Q(B) = %v, want empty", qb)
	}
}

func TestBeersRuns(t *testing.T) {
	var b strings.Builder
	run(&b)
	out := b.String()
	for _, want := range []string{
		"drinkers visiting a lousy bar: (bart)",
		"(A, alex) ~ (B, alex): true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}
