// Medical: the paper's Fig. 1 scenario end to end — patients with
// symptom sets, diseases with symptom profiles, a symptom checklist.
// Runs the set-containment join (which patients exhibit all symptoms
// of which disease?) with all three algorithms, and the division
// (who has every symptom on the checklist?) with all five, comparing
// their costs.
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"radiv/internal/division"
	"radiv/internal/paperfigs"
	"radiv/internal/setjoin"
	"radiv/internal/stats"
	"radiv/internal/workload"
)

func main() { run(os.Stdout) }

func run(w io.Writer) {
	d := paperfigs.Fig1()
	fmt.Fprintf(w, "Fig. 1 database:\n%s\n", d)

	person := setjoin.Groups(d.Rel("Person"))
	disease := setjoin.Groups(d.Rel("Disease"))
	fmt.Fprintln(w, "set-containment join Person ⋈[⊇] Disease (all algorithms):")
	for _, alg := range setjoin.ContainmentAlgorithms() {
		res, st := alg.Join(person, disease)
		fmt.Fprintf(w, "  %-18s %d pairs, %d verifications: %v\n",
			alg.Name(), res.Len(), st.Verifications, res.Sorted())
	}

	fmt.Fprintln(w, "\ndivision Person ÷ Symptoms (all algorithms):")
	for _, alg := range division.All() {
		res, st := alg.Divide(d.Rel("Person"), d.Rel("Symptoms"), division.Containment)
		fmt.Fprintf(w, "  %-13s max memory %3d tuples: %v\n", alg.Name(), st.MaxMemoryTuples, res.Sorted())
	}

	// Scale the scenario up: a thousand patients, a growing checklist.
	fmt.Fprintln(w, "\nscaled-up checklist sweep (1000 patients):")
	t := stats.NewTable("|checklist|", "algorithm", "time", "qualifying")
	for _, sz := range []int{2, 8, 32} {
		wl := workload.Division{
			Groups: 1000, GroupSize: 10, Dist: workload.Uniform,
			DivisorSize: sz, MatchFraction: 0.2, Seed: 1,
		}
		r, s := wl.Generate()
		algs := []division.Algorithm{
			division.MergeSort{}, division.Hash{}, division.Aggregate{},
			division.ParallelHash{},
		}
		for _, alg := range algs {
			start := time.Now()
			res, _ := alg.Divide(r, s, division.Containment)
			t.AddRow(sz, alg.Name(), time.Since(start).Round(time.Microsecond), res.Len())
		}
	}
	fmt.Fprint(w, t)
}
