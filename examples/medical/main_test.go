package main

import (
	"strings"
	"testing"

	"radiv/internal/division"
	"radiv/internal/paperfigs"
	"radiv/internal/setjoin"
)

// Fig. 1's core results: the containment join pairs An and Bob with
// the flu profile (and Bob with Lyme), and the division returns
// {An, Bob} — for every algorithm.
func TestMedicalCorePath(t *testing.T) {
	d := paperfigs.Fig1()
	person := setjoin.Groups(d.Rel("Person"))
	disease := setjoin.Groups(d.Rel("Disease"))
	for _, alg := range setjoin.ContainmentAlgorithms() {
		res, _ := alg.Join(person, disease)
		if res.Len() != 3 {
			t.Errorf("%s: containment join has %d pairs, want 3", alg.Name(), res.Len())
		}
	}
	for _, alg := range division.All() {
		res, _ := alg.Divide(d.Rel("Person"), d.Rel("Symptoms"), division.Containment)
		if res.Len() != 2 {
			t.Errorf("%s: Person ÷ Symptoms has %d tuples, want 2", alg.Name(), res.Len())
		}
	}
}

func TestMedicalRuns(t *testing.T) {
	var b strings.Builder
	run(&b)
	out := b.String()
	for _, want := range []string{"Fig. 1 database:", "parallel-hash", "scaled-up checklist sweep"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}
