package main

import (
	"strings"
	"testing"

	"radiv/internal/division"
	"radiv/internal/paperfigs"
	"radiv/internal/rel"
	"radiv/internal/setjoin"
)

// Fig. 1's core results: the containment join pairs An and Bob with
// the flu profile (and Bob with Lyme), and the division returns
// {An, Bob} — for every algorithm.
func TestMedicalCorePath(t *testing.T) {
	d := paperfigs.Fig1()
	person := setjoin.Groups(d.Rel("Person"))
	disease := setjoin.Groups(d.Rel("Disease"))
	for _, alg := range setjoin.ContainmentAlgorithms() {
		res, _ := alg.Join(person, disease)
		if res.Len() != 3 {
			t.Errorf("%s: containment join has %d pairs, want 3", alg.Name(), res.Len())
		}
	}
	for _, alg := range division.All() {
		res, _ := alg.Divide(d.Rel("Person"), d.Rel("Symptoms"), division.Containment)
		if res.Len() != 2 {
			t.Errorf("%s: Person ÷ Symptoms has %d tuples, want 2", alg.Name(), res.Len())
		}
	}
}

// TestMedicalCursorFedParallel exercises the cursor-fed parallel
// paths at two workers — the configuration CI pins — on the Fig. 1
// data: the streamed containment join and streamed division must emit
// exactly what the sequential algorithms produce.
func TestMedicalCursorFedParallel(t *testing.T) {
	d := paperfigs.Fig1()
	person := setjoin.Groups(d.Rel("Person"))
	disease := setjoin.Groups(d.Rel("Disease"))
	// Drain each cursor fully before comparing — the cursor contract
	// requires exhaustion, and a t.Fatalf mid-drain would leave the
	// exchange goroutines blocked.
	drain := func(c interface {
		Next() (rel.Tuple, bool)
	}) []rel.Tuple {
		var out []rel.Tuple
		for p, ok := c.Next(); ok; p, ok = c.Next() {
			out = append(out, p)
		}
		return out
	}
	want, _ := setjoin.SignatureContainment{}.Join(person, disease)
	got := drain(setjoin.ParallelSignatureContainment{Workers: 2}.JoinStream(person, disease))
	wantT := want.Tuples()
	if len(got) != len(wantT) {
		t.Fatalf("streamed containment join emitted %d pairs, want %d", len(got), len(wantT))
	}
	for i := range got {
		if !got[i].Equal(wantT[i]) {
			t.Fatalf("streamed containment pair %d is %v, want %v", i, got[i], wantT[i])
		}
	}
	div, _ := division.Hash{}.Divide(d.Rel("Person"), d.Rel("Symptoms"), division.Containment)
	dgot := drain(division.ParallelHash{Workers: 2}.DivideStream(d.Rel("Person").Cursor(), d.Rel("Symptoms"), division.Containment))
	dwant := div.Tuples()
	if len(dgot) != len(dwant) {
		t.Fatalf("streamed division emitted %d tuples, want %d", len(dgot), len(dwant))
	}
	for i := range dgot {
		if !dgot[i].Equal(dwant[i]) {
			t.Fatalf("streamed division tuple %d is %v, want %v", i, dgot[i], dwant[i])
		}
	}
}

func TestMedicalRuns(t *testing.T) {
	var b strings.Builder
	run(&b)
	out := b.String()
	for _, want := range []string{"Fig. 1 database:", "parallel-hash", "scaled-up checklist sweep"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}
