// Pump: the Lemma 24 construction, interactively. Starts from the
// Fig. 4 database and expression, finds the witness pair, prints the
// pumped databases D1, D2, D3 (matching the figure), and then measures
// the quadratic join growth up to D64.
package main

import (
	"fmt"
	"io"
	"os"

	"radiv/internal/core"
	"radiv/internal/paperfigs"
	"radiv/internal/ra"
	"radiv/internal/stats"
)

func main() { run(os.Stdout) }

func run(out io.Writer) {
	d, e := paperfigs.Fig4()
	fmt.Fprintf(out, "expression E = E1 ⋈[3=1] E2 where E1 = R ⋉[1=2] T and E2 = S ⋉[2=1] T\n")
	fmt.Fprintf(out, "as pure RA: %s\n\n", e)
	fmt.Fprintf(out, "database D:\n%s\n", d)

	w := core.FindWitnessAt(e, d)
	if w == nil {
		panic("no Lemma 24 witness — should not happen on Fig. 4")
	}
	fmt.Fprintf(out, "witness: %s\n", w)
	fmt.Fprintf(out, "E1(D) and E2(D) join on ā=(1,2,3), b̄=(3,4,5); free values {1,2} and {4,5}\n\n")

	p, err := core.NewPump(w)
	if err != nil {
		panic(err)
	}
	for n := 1; n <= 3; n++ {
		fmt.Fprintf(out, "D%d (canonical labels; ~k suffix = new^(k)):\n%s\n", n, p.Database(n))
	}

	t := stats.NewTable("n", "|Dn|", "|E(Dn)|", "n^2", "growth vs |Dn|")
	prev := 0
	for _, pt := range p.Measure([]int{1, 2, 4, 8, 16, 32, 64}) {
		ratio := ""
		if prev > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(pt.JoinOutput)/float64(prev))
		}
		t.AddRow(pt.N, pt.DatabaseSize, pt.JoinOutput, pt.N*pt.N, ratio)
		prev = pt.JoinOutput
	}
	fmt.Fprint(out, t)
	fmt.Fprintln(out, "\n|Dn| grows linearly, |E(Dn)| quadratically: the dichotomy's lower half.")

	// The same machinery applied to the division expression.
	div := ra.DivisionExpr("R", "S")
	verdict, err := core.Classify(div, nil)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(out, "\ndivision expression verdict: %s\n", verdict)
}
