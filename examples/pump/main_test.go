package main

import (
	"strings"
	"testing"

	"radiv/internal/core"
	"radiv/internal/paperfigs"
)

// The pump's core path: the Fig. 4 witness exists, and the pumped
// databases grow linearly while the join output grows quadratically.
func TestPumpCorePath(t *testing.T) {
	d, e := paperfigs.Fig4()
	w := core.FindWitnessAt(e, d)
	if w == nil {
		t.Fatal("no Lemma 24 witness on Fig. 4")
	}
	p, err := core.NewPump(w)
	if err != nil {
		t.Fatal(err)
	}
	pts := p.Measure([]int{4, 16})
	if len(pts) != 2 {
		t.Fatalf("Measure returned %d points", len(pts))
	}
	// 4× n ⇒ ~16× join output, ~4× database size.
	joinRatio := float64(pts[1].JoinOutput) / float64(pts[0].JoinOutput)
	dbRatio := float64(pts[1].DatabaseSize) / float64(pts[0].DatabaseSize)
	if joinRatio < 8 {
		t.Errorf("join output ratio %.1f, expected ≈16 (quadratic)", joinRatio)
	}
	if dbRatio > 8 {
		t.Errorf("database size ratio %.1f, expected ≈4 (linear)", dbRatio)
	}
}

func TestPumpRuns(t *testing.T) {
	var b strings.Builder
	run(&b)
	if !strings.Contains(b.String(), "division expression verdict: quadratic") {
		t.Error("output lacks the quadratic verdict")
	}
}
