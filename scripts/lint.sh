#!/usr/bin/env bash
# One-shot static analysis entry point. CI runs this script verbatim;
# run it locally before sending a change.
#
#   1. go vet            — the stock toolchain checks
#   2. radivvet          — the engine's contract analyzers
#                          (caller-owned results — exported functions
#                          AND methods, so the planner's Plan entry
#                          points are covered — snapshot/exchange
#                          quiescence, pooled-batch release,
#                          panic prefixes); see internal/analysis
#   3. fixtures          — the analyzers' own must-flag/must-not-flag
#                          fixture suites (testdata is invisible to
#                          go list patterns, so radivvet alone never
#                          exercises them)
#   4. gofmt             — formatting must be clean, testdata included
#   5. golangci-lint     — curated correctness linters (.golangci.yml)
#
# golangci-lint is optional locally (the sandbox image does not ship
# it) but mandatory in CI: export LINT_REQUIRE_GOLANGCI=1 to make a
# missing binary fatal.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== radivvet =="
go run ./cmd/radivvet ./...

echo "== analyzer fixtures =="
go test -count=1 ./internal/analysis/...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== golangci-lint =="
if command -v golangci-lint >/dev/null 2>&1; then
	golangci-lint run
elif [ "${LINT_REQUIRE_GOLANGCI:-0}" = "1" ]; then
	echo "golangci-lint is required but not installed" >&2
	exit 1
else
	echo "golangci-lint not installed; skipped (CI enforces it)" >&2
fi

echo "lint: all clean"
