#!/usr/bin/env bash
# bench.sh — run the tier-1 benchmark set with -benchmem and write the
# results as JSON (default: BENCH_10.json), so every PR from here on has
# a machine-readable perf baseline. CI uploads the file as an artifact
# and diffs it against the committed previous-PR baseline with
# cmd/benchdiff, failing loudly on >20% regressions.
#
# Usage:
#   scripts/bench.sh [output.json]
# Environment:
#   BENCH_PATTERN  benchmark regexp (default: all root-module benchmarks)
#   BENCHTIME      go test -benchtime value (default: 1x — smoke speed;
#                  use e.g. 2s locally for stable numbers)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_10.json}"
pattern="${BENCH_PATTERN:-.}"
benchtime="${BENCHTIME:-1x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$raw"

awk '
BEGIN { first = 1 }
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    if (first) {
        printf "{\"env\": {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"},\n", goos, goarch, cpu
        printf " \"benchmarks\": [\n"
    }
    name = $1
    iters = $2
    metrics = ""
    # Remaining fields come in value-unit pairs (ns/op, B/op,
    # allocs/op, and any custom b.ReportMetric units).
    for (i = 3; i + 1 <= NF; i += 2) {
        v = $i; u = $(i + 1)
        gsub(/"/, "\\\"", u)
        if (metrics != "") metrics = metrics ", "
        metrics = metrics "\"" u "\": " v
    }
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}", name, iters, metrics
}
END {
    if (first) { print "{\"env\": {}, \"benchmarks\": [" }
    printf "\n]}\n"
}' "$raw" > "$out"

echo "wrote $(grep -c '"name"' "$out") benchmark entries to $out" >&2
